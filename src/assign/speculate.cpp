#include "assign/speculate.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <optional>

#include "assign/module_set.h"
#include "support/budget.h"
#include "support/diagnostics.h"
#include "support/fault_injection.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "telemetry/telemetry.h"

namespace parmem::assign {
namespace {

using graph::Vertex;
using HeapEntry = AssignWorkspace::HeapEntry;

/// Deterministic re-pick rotation: the idx-th set bit of `mask`.
std::uint32_t nth_set_bit(std::uint32_t mask, std::uint32_t idx) {
  for (std::uint32_t i = 0; i < idx; ++i) mask &= mask - 1;
  return static_cast<std::uint32_t>(std::countr_zero(mask));
}

}  // namespace

bool speculate_color_atom(const ConflictGraph& cg, const ColorOptions& opts,
                          std::vector<std::int32_t>& module,
                          std::vector<bool>& decided,
                          const std::vector<bool>& never_remove,
                          std::vector<std::size_t>& load, AssignWorkspace& ws,
                          ColorResult& result) {
  PARMEM_SPAN("assign.speculate");
  PARMEM_CHECK(opts.pool != nullptr, "speculative coloring requires a pool");
  PARMEM_FAULT_POINT("assign.speculate", opts.budget);
  SpeculateStats& stats = result.speculative;

  const std::size_t k = opts.module_count;
  const graph::Graph& g = cg.graph();
  const std::size_t n = g.vertex_count();
  const std::uint32_t full_mask =
      k >= 32 ? ~0u : (1u << static_cast<std::uint32_t>(k)) - 1u;
  const std::size_t chunk = std::max<std::size_t>(1, opts.speculate_chunk);

  // Deterministic half-share of the caller's remaining allowance. All
  // charges below happen serially at round boundaries, so the trip point —
  // and therefore the fall-back decision — is a pure function of the input
  // for a step budget, independent of threads and chunk size.
  support::Budget* const parent = opts.budget;
  std::optional<support::Budget> sub;
  if (parent != nullptr) {
    if (!parent->poll()) {
      ++stats.fallbacks;
      PARMEM_COUNTER_ADD("assign.speculative.fallbacks", 1);
      return false;
    }
    sub.emplace(parent->fraction_of_remaining(1, 2), parent);
  }

  // The atom's undecided vertices in vertex-id order. Chunks are contiguous
  // id ranges: conflict edges come from values co-live in a window of the
  // access stream, and stream order assigns nearby ids to nearby values, so
  // an id-contiguous chunk keeps most of its members' edges internal —
  // where the per-chunk dynamic-urgency sweep (phase A) resolves them with
  // the sequential heap's own triage. Urgency ordering still governs the
  // serial tail and the rescue decisions; id order only sets chunk
  // membership and the cross-chunk conflict priority.
  std::vector<Vertex> order(ws.rest);
  std::sort(order.begin(), order.end());

  std::vector<std::uint32_t> pos(n, 0);
  for (std::uint32_t i = 0; i < order.size(); ++i) pos[order[i]] = i;

  // Per-round urgency and surviving-option mask, recomputed in phase A from
  // the committed state (pure per-vertex functions, so the parallel
  // recompute is deterministic).
  std::vector<std::uint64_t> urg_w(n, 0);
  std::vector<std::uint32_t> urg_kk(n, 0);
  std::vector<std::uint32_t> free_mask(n, 0);

  // Per-vertex speculative state. Everything here is local to this call:
  // nothing escapes until the final commit, which keeps the fall-back path
  // free of cleanup.
  std::vector<std::int32_t> spec_color(n, kUnassignedModule);
  std::vector<std::int32_t> tentative(n, kUnassignedModule);
  std::vector<std::uint8_t> is_pending(n, 0);
  std::vector<std::uint8_t> win(n, 0);
  std::vector<std::uint8_t> defer(n, 0);
  std::vector<std::uint32_t> losses(n, 0);
  for (const Vertex v : order) is_pending[v] = 1;

  std::vector<std::size_t> load_now(load);
  std::vector<Vertex> pending(order);
  std::vector<Vertex> next_pending;
  std::vector<Vertex> removal_order;
  std::vector<Vertex> forced_order;

  // Tentative-pick bitset for word-parallel conflict detection against the
  // graph's CSR adjacency bitset; row scans when the bitset is absent.
  const std::size_t words = g.adjacency_words_per_row();
  std::vector<std::uint64_t> tentative_bits(words, 0);

  // Committed module of a neighbor: a speculative commit (including forced
  // picks) or a decision from an earlier atom / stage.
  const auto committed_module = [&](Vertex w) -> std::int32_t {
    const std::int32_t c = spec_color[w];
    return c >= 0 ? c : module[w];
  };

  // A whole independent set commits per round, so a pending vertex can lose
  // several modules to non-conflicting neighbors at once — something the
  // one-commit-at-a-time sequential heap never suffers. Two guards keep the
  // removal pattern close to sequential, where saturation falls on the
  // cheap-to-duplicate low-urgency vertices:
  //  - a loser down to its last kRescueAt modules commits serially at the
  //    barrier instead of waiting out another round;
  //  - a winner defers (phase B pass 2) when its pick would consume one of
  //    the last kProtectAt modules of an endangered lower-position loser,
  //    steering commits away from those vertices' remaining options.
  constexpr std::uint32_t kRescueAt = 1;
  constexpr std::uint32_t kProtectAt = 2;

  // Out-of-options finalization: force never-remove vertices into the
  // cheapest conflicting module (sequential sweep's cost rule), remove the
  // rest. Shared by the round barrier and the serial tail below.
  const auto finalize = [&](Vertex v) {
    is_pending[v] = 0;
    if (!never_remove.empty() && never_remove[v]) {
      std::array<std::uint64_t, kMaxModules> cost{};
      const auto nbrs = g.neighbors(v);
      const auto wts = cg.conf_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const std::int32_t m = committed_module(nbrs[i]);
        if (m >= 0) {
          cost[static_cast<std::uint32_t>(m)] +=
              std::max<std::uint32_t>(wts[i], 1u);
        }
      }
      std::uint32_t best = 0;
      for (std::uint32_t m = 1; m < k; ++m) {
        if (cost[m] < cost[best] ||
            (cost[m] == cost[best] && load_now[m] < load_now[best])) {
          best = m;
        }
      }
      spec_color[v] = static_cast<std::int32_t>(best);
      ++load_now[best];
      forced_order.push_back(v);
    } else {
      removal_order.push_back(v);  // V_unassigned
    }
  };

  std::uint64_t rounds = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t repaired = 0;
  std::uint64_t chunks_dispatched = 0;
  bool aborted = false;

  while (!pending.empty()) {
    // Round-boundary budget settlement: one unit plus the degree per pending
    // vertex — the neighborhood scans phases A and B are about to do.
    if (sub.has_value()) {
      std::uint64_t cost = 0;
      for (const Vertex v : pending) cost += 1 + g.degree(v);
      if (!sub->charge(cost)) {
        aborted = true;
        break;
      }
    }
    ++rounds;
    const std::size_t nchunks = (pending.size() + chunk - 1) / chunk;
    chunks_dispatched += nchunks;
    // Chunk membership for phase A's intra-chunk visibility test; doubles as
    // the conflict-resolution priority in phases B and C (pending stays
    // id-sorted, so lower position == lower vertex id).
    for (std::uint32_t i = 0; i < pending.size(); ++i) pos[pending[i]] = i;

    // Phase A (parallel): each chunk runs the Fig. 4 dynamic-urgency sweep
    // restricted to its own vertices — pop the most urgent unprocessed
    // member, pick it a module, propagate the pick to its intra-chunk
    // neighbors' taken-masks and urgency numerators, repeat. The chunk is a
    // miniature sequential coloring: a member saturating inside the chunk
    // outranks its neighbors *before* its last modules disappear, the same
    // triage the sequential heap performs, and intra-chunk neighbors never
    // collide, so the only conflicts left for phase B are cross-chunk
    // edges. Tasks touch chunk-local state plus per-vertex slots of their
    // own members (cross-chunk picks stay invisible until the barrier), so
    // the phase is race-free and the round a pure function of
    // (round-start state, chunk size).
    opts.pool->parallel_for(nchunks, [&](std::size_t c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(pending.size(), lo + chunk);
      const std::size_t cn = hi - lo;
      // Per-member taken-mask and urgency numerator, seeded with one
      // neighborhood scan against the committed state: the initial Σ wt
      // over already-decided neighbors plus the speculative commits so far
      // (wt(u→v) = 0 while deg(u) < k, else conf(u, v)).
      std::vector<std::uint32_t> taken_l(cn, 0);
      std::vector<std::uint64_t> w_l(cn, 0);
      std::vector<std::uint8_t> done(cn, 0);
      std::array<std::size_t, kMaxModules> load_l{};
      for (std::uint32_t m = 0; m < k; ++m) load_l[m] = load_now[m];
      for (std::size_t i = 0; i < cn; ++i) {
        const Vertex v = pending[lo + i];
        std::uint32_t taken = 0;
        std::uint64_t w = ws.w_assigned[v];
        const auto nbrs = g.neighbors(v);
        const auto wts = cg.conf_weights(v);
        for (std::size_t j = 0; j < nbrs.size(); ++j) {
          const Vertex u = nbrs[j];
          const std::int32_t m = committed_module(u);
          if (m < 0) continue;
          taken |= 1u << static_cast<std::uint32_t>(m);
          if (spec_color[u] >= 0 && ws.deg[u] >= k) w += wts[j];
        }
        taken_l[i] = taken;
        w_l[i] = w;
      }
      // DSATUR-style bucket queue approximating the Fig. 4 pop order:
      // priority is the member's current option count (fewest modules left
      // = most urgent — the dominant factor of U = w/kk), lazily
      // maintained: a member is re-pushed whenever a propagated pick drops
      // its count, stale entries are skipped on pop. A member down to zero
      // options pops before anything else, the sequential heap's
      // "infinitely urgent" rule. O(1) per operation and no comparator
      // calls — the chunk sweep must stay cheaper per vertex than the
      // global heap it speculates for, which a real w/kk heap is not.
      const auto kk_of = [&](std::size_t i) {
        return static_cast<std::uint32_t>(
            std::popcount(full_mask & ~taken_l[i]));
      };
      // Buckets pop LIFO, so seeding them in ascending static-weight order
      // makes the heavy vertices pop first within a priority level — the
      // sequential sweep's tie-break, which commits the expensive vertices
      // early and lets saturation fall on the cheap-to-duplicate tail.
      std::vector<std::uint32_t> seed_order(cn);
      for (std::size_t i = 0; i < cn; ++i) {
        seed_order[i] = static_cast<std::uint32_t>(i);
      }
      std::sort(seed_order.begin(), seed_order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  const std::uint64_t sa = ws.s_sum[pending[lo + a]];
                  const std::uint64_t sb = ws.s_sum[pending[lo + b]];
                  if (sa != sb) return sa < sb;
                  return a > b;
                });
      std::vector<std::vector<std::uint32_t>> buckets(k + 1);
      for (const std::uint32_t i : seed_order) {
        buckets[kk_of(i)].push_back(i);
      }
      for (std::size_t step = 0; step < cn; ++step) {
        std::size_t bi = cn;
        for (std::uint32_t b = 0; b <= k && bi == cn; ++b) {
          auto& bucket = buckets[b];
          while (!bucket.empty()) {
            const std::uint32_t i = bucket.back();
            bucket.pop_back();
            if (done[i] != 0 || kk_of(i) != b) continue;  // stale
            bi = i;
            break;
          }
        }
        PARMEM_CHECK(bi < cn, "speculative chunk bucket queue drained early");
        done[bi] = 1;
        const Vertex v = pending[lo + bi];
        const std::uint32_t free = full_mask & ~taken_l[bi];
        urg_w[v] = w_l[bi];
        urg_kk[v] = static_cast<std::uint32_t>(std::popcount(free));
        free_mask[v] = free;
        if (free == 0) {
          tentative[v] = kUnassignedModule;  // re-checked live in phase C
          continue;
        }
        std::uint32_t picked;
        if (opts.pick == ModulePick::kLowestIndex && losses[v] == 0) {
          picked = static_cast<std::uint32_t>(std::countr_zero(free));
        } else {
          // kLeastLoaded (and every repair re-pick): choose among the free
          // modules with minimal load — the round-start snapshot plus this
          // chunk's own picks — hash-rotating the tie so chunks working
          // from the shared snapshot spread instead of herding onto one
          // module. Pure function of (v, losses, chunk state).
          std::uint32_t cands = free;
          if (opts.pick == ModulePick::kLeastLoaded) {
            std::size_t min_load = SIZE_MAX;
            for (std::uint32_t m = 0; m < k; ++m) {
              if ((free & (1u << m)) != 0) {
                min_load = std::min(min_load, load_l[m]);
              }
            }
            cands = 0;
            for (std::uint32_t m = 0; m < k; ++m) {
              if ((free & (1u << m)) != 0 && load_l[m] == min_load) {
                cands |= 1u << m;
              }
            }
          }
          support::SplitMix64 h(static_cast<std::uint64_t>(v) *
                                    0x9e3779b97f4a7c15ULL +
                                losses[v]);
          const auto ncands =
              static_cast<std::uint32_t>(std::popcount(cands));
          picked = nth_set_bit(cands,
                               static_cast<std::uint32_t>(h.below(ncands)));
        }
        tentative[v] = static_cast<std::int32_t>(picked);
        ++load_l[picked];
        // Propagate to unprocessed intra-chunk neighbors (the chunk test
        // gates every cross-chunk slot before it is read).
        const auto nbrs = g.neighbors(v);
        const auto wts = cg.conf_weights(v);
        for (std::size_t j = 0; j < nbrs.size(); ++j) {
          const Vertex u = nbrs[j];
          if (is_pending[u] == 0) continue;
          const std::uint32_t p = pos[u];
          if (p / chunk != c) continue;
          const std::size_t ui = p - lo;
          if (done[ui] != 0) continue;
          const std::uint32_t taken_before = taken_l[ui];
          taken_l[ui] |= 1u << picked;
          if (ws.deg[v] >= k) w_l[ui] += wts[j];
          if (taken_l[ui] != taken_before) {
            buckets[kk_of(ui)].push_back(ui);
          }
        }
      }
    });

    // Serial barrier. Urgency triage already happened inside the chunks, so
    // pending keeps its id order (pos is current from the loop top); the
    // barrier only needs to know whether the protection pass has anything
    // to protect.
    bool any_endangered = false;
    for (const Vertex v : pending) {
      any_endangered |= tentative[v] >= 0 && urg_kk[v] <= kProtectAt;
    }

    // The round's tentative set, for word-parallel detection below. Built
    // serially: distinct vertices may share a word.
    if (words != 0) {
      std::fill(tentative_bits.begin(), tentative_bits.end(), 0);
      for (const Vertex v : pending) {
        if (tentative[v] >= 0) {
          tentative_bits[v >> 6] |= std::uint64_t{1} << (v & 63);
        }
      }
    }

    // Phase B pass 1 (parallel): a vertex keeps its pick iff no
    // lower-position neighbor picked the same module this round.
    std::vector<std::uint64_t> chunk_conflicts(nchunks, 0);
    opts.pool->parallel_for(nchunks, [&](std::size_t c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(pending.size(), lo + chunk);
      for (std::size_t i = lo; i < hi; ++i) {
        const Vertex v = pending[i];
        defer[v] = 0;
        const std::int32_t tc = tentative[v];
        if (tc < 0) {
          win[v] = 1;  // finalization always resolves
          continue;
        }
        bool lose = false;
        if (words != 0) {
          const auto row = g.adjacency_row(v);
          for (std::size_t wd = 0; wd < words && !lose; ++wd) {
            std::uint64_t hits = row[wd] & tentative_bits[wd];
            while (hits != 0) {
              const auto u = static_cast<Vertex>(
                  wd * 64 + static_cast<std::size_t>(std::countr_zero(hits)));
              hits &= hits - 1;
              if (tentative[u] == tc && pos[u] < pos[v]) {
                lose = true;
                break;
              }
            }
          }
        } else {
          for (const Vertex u : g.neighbors(v)) {
            if (is_pending[u] != 0 && tentative[u] == tc && pos[u] < pos[v]) {
              lose = true;
              break;
            }
          }
        }
        win[v] = lose ? 0 : 1;
        if (lose) ++chunk_conflicts[c];
      }
    });

    // Phase B pass 2 (parallel): protection. A pass-1 winner defers when a
    // lower-position pending loser is down to its last kProtectAt modules and
    // the winner's pick is one of them — committing would push a vertex
    // that is expensive to duplicate toward removal while a cheaper,
    // less urgent one could yield instead. Reads only pass-1 state (win is
    // never written here; deferrals land in `defer`), so the pass is
    // race-free and deterministic.
    if (any_endangered) {
      opts.pool->parallel_for(nchunks, [&](std::size_t c) {
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(pending.size(), lo + chunk);
        for (std::size_t i = lo; i < hi; ++i) {
          const Vertex v = pending[i];
          const std::int32_t tc = tentative[v];
          if (tc < 0 || win[v] == 0) continue;
          const auto protects = [&](Vertex u) {
            return tentative[u] >= 0 && win[u] == 0 && pos[u] < pos[v] &&
                   urg_kk[u] <= kProtectAt &&
                   ((free_mask[u] >> static_cast<std::uint32_t>(tc)) & 1u) !=
                       0;
          };
          bool yield = false;
          if (words != 0) {
            const auto row = g.adjacency_row(v);
            for (std::size_t wd = 0; wd < words && !yield; ++wd) {
              std::uint64_t hits = row[wd] & tentative_bits[wd];
              while (hits != 0) {
                const auto u = static_cast<Vertex>(
                    wd * 64 +
                    static_cast<std::size_t>(std::countr_zero(hits)));
                hits &= hits - 1;
                if (protects(u)) {
                  yield = true;
                  break;
                }
              }
            }
          } else {
            for (const Vertex u : g.neighbors(v)) {
              if (is_pending[u] != 0 && protects(u)) {
                yield = true;
                break;
              }
            }
          }
          if (yield) {
            defer[v] = 1;
            ++chunk_conflicts[c];
          }
        }
      });
    }
    for (const std::uint64_t c : chunk_conflicts) conflicts += c;

    // Phase C (serial barrier, position order): commit winners, finalize
    // saturated vertices, rescue endangered losers, carry the rest into
    // the next round.
    next_pending.clear();
    // A repair commit below may install a module that differs from the
    // vertex's tentative pick — phase B never saw it, so any later winner
    // holding that module must be demoted to the repair path itself or it
    // would commit a real conflict.
    const auto invalidate_pick = [&](Vertex v, std::int32_t m) {
      for (const Vertex u : g.neighbors(v)) {
        if (is_pending[u] != 0 && tentative[u] == m) win[u] = 0;
      }
    };
    for (const Vertex v : pending) {
      const std::int32_t tc = tentative[v];
      if (tc >= 0 && win[v] != 0 && defer[v] == 0) {
        is_pending[v] = 0;
        spec_color[v] = tc;
        ++load_now[static_cast<std::uint32_t>(tc)];
        if (losses[v] > 0) ++repaired;
      } else {
        // Loser, deferral, or saturated in phase A (tc < 0 — possibly only
        // speculatively, by same-chunk picks that then lost, so even that
        // case recomputes live instead of finalizing outright).
        // Recompute the surviving option set
        // against the *current* committed state — including this barrier's
        // earlier commits, which the parallel phases could not see. A loser
        // that is out of options finalizes now; one inside the rescue
        // guard commits serially with the sequential pick rule (waiting out
        // another parallel round could erase its last modules); the rest
        // re-enter the next round. Position order means a lower-id vertex
        // is rescued before a higher-id one recomputes, so when two
        // endangered neighbors want the same last module the resolution is
        // fixed by the schedule, not by timing.
        ++losses[v];
        std::uint32_t taken = 0;
        for (const Vertex u : g.neighbors(v)) {
          const std::int32_t m = committed_module(u);
          if (m >= 0) taken |= 1u << static_cast<std::uint32_t>(m);
        }
        const std::uint32_t free = full_mask & ~taken;
        if (free == 0) {
          finalize(v);
          if (spec_color[v] >= 0) invalidate_pick(v, spec_color[v]);  // forced
        } else if (static_cast<std::uint32_t>(std::popcount(free)) <=
                   kRescueAt) {
          std::uint32_t best =
              static_cast<std::uint32_t>(std::countr_zero(free));
          if (opts.pick == ModulePick::kLeastLoaded) {
            for (std::uint32_t m = best + 1; m < k; ++m) {
              if ((free & (1u << m)) != 0 && load_now[m] < load_now[best]) {
                best = m;
              }
            }
          }
          is_pending[v] = 0;
          spec_color[v] = static_cast<std::int32_t>(best);
          ++load_now[best];
          ++repaired;
          if (static_cast<std::int32_t>(best) != tc) {
            invalidate_pick(v, static_cast<std::int32_t>(best));
          }
        } else {
          next_pending.push_back(v);
        }
      }
    }
    PARMEM_CHECK(next_pending.size() < pending.size(),
                 "speculative coloring round resolved nothing");
    pending.swap(next_pending);
    // Hand the tail to the serial finisher below once the survivors are a
    // minority: they sit in the saturated regions where round-granularity
    // commits cost the most quality, and a small pending set no longer
    // amortizes two parallel dispatches per round anyway.
    if (pending.size() * 2 < order.size()) break;
  }

  // Serial tail: finish the surviving minority with the sequential rule —
  // one vertex at a time in urgency order against the live committed state,
  // so saturation falls where the sequential sweep would let it fall.
  if (!aborted && !pending.empty()) {
    if (sub.has_value()) {
      std::uint64_t cost = 0;
      for (const Vertex v : pending) cost += 1 + g.degree(v);
      if (!sub->charge(cost)) aborted = true;
    }
    if (!aborted) {
      std::sort(pending.begin(), pending.end(), [&](Vertex a, Vertex b) {
        return less_urgent({urg_w[b], urg_kk[b], ws.s_sum[b], b},
                           {urg_w[a], urg_kk[a], ws.s_sum[a], a});
      });
      for (const Vertex v : pending) {
        std::uint32_t taken = 0;
        for (const Vertex u : g.neighbors(v)) {
          const std::int32_t m = committed_module(u);
          if (m >= 0) taken |= 1u << static_cast<std::uint32_t>(m);
        }
        const std::uint32_t free = full_mask & ~taken;
        if (free == 0) {
          finalize(v);
          continue;
        }
        std::uint32_t best =
            static_cast<std::uint32_t>(std::countr_zero(free));
        if (opts.pick == ModulePick::kLeastLoaded) {
          for (std::uint32_t m = best + 1; m < k; ++m) {
            if ((free & (1u << m)) != 0 && load_now[m] < load_now[best]) {
              best = m;
            }
          }
        }
        is_pending[v] = 0;
        spec_color[v] = static_cast<std::int32_t>(best);
        ++load_now[best];
        if (losses[v] > 0) ++repaired;
      }
      pending.clear();
    }
  }

  // Reclaim post-pass (serial, removal order): parallel rounds saturate
  // more vertices than the one-commit-at-a-time sequential sweep, and every
  // removal costs duplicated copies downstream. For each removed vertex,
  // look for a module held by exactly one speculatively committed neighbor
  // that can itself move to a module free for it; swap it away and claim
  // the slot. Both moves preserve conflict-freedom, and the pass is a no-op
  // on atoms without removals.
  std::uint64_t reclaimed = 0;
  if (!aborted && !removal_order.empty()) {
    bool charged = true;
    if (sub.has_value()) {
      const std::uint64_t cost = n + 2 * g.edge_count() +
                                 32 * static_cast<std::uint64_t>(
                                          removal_order.size());
      charged = sub->charge(cost);
      aborted = !charged;
    }
    if (charged) {
      // Exact committed-neighbor counts per (vertex, module), built in
      // parallel (disjoint rows per chunk) and maintained incrementally as
      // swaps commit, so every availability test below is O(k).
      std::vector<std::uint16_t> cnt(n * k, 0);
      {
        const std::size_t nch = (n + chunk - 1) / chunk;
        opts.pool->parallel_for(nch, [&](std::size_t c) {
          const std::size_t lo = c * chunk;
          const std::size_t hi = std::min(n, lo + chunk);
          for (std::size_t x = lo; x < hi; ++x) {
            for (const Vertex u : g.neighbors(static_cast<Vertex>(x))) {
              const std::int32_t m = committed_module(u);
              if (m >= 0) ++cnt[x * k + static_cast<std::uint32_t>(m)];
            }
          }
        });
      }
      const auto avail_of = [&](Vertex x) {
        std::uint32_t mask = 0;
        const std::uint16_t* row = &cnt[static_cast<std::size_t>(x) * k];
        for (std::uint32_t m = 0; m < k; ++m) {
          if (row[m] == 0) mask |= 1u << m;
        }
        return mask;
      };
      // Exactly one committed neighbor holds m (cnt == 1); find it.
      const auto holder_of = [&](Vertex v, std::uint32_t m) {
        for (const Vertex u : g.neighbors(v)) {
          if (committed_module(u) == static_cast<std::int32_t>(m)) return u;
        }
        PARMEM_CHECK(false, "reclaim holder count out of sync");
        return v;
      };
      const auto pick_dst = [&](std::uint32_t mask) {
        std::uint32_t best =
            static_cast<std::uint32_t>(std::countr_zero(mask));
        if (opts.pick == ModulePick::kLeastLoaded) {
          for (std::uint32_t m = best + 1; m < k; ++m) {
            if ((mask & (1u << m)) != 0 && load_now[m] < load_now[best]) {
              best = m;
            }
          }
        }
        return best;
      };
      const auto move_to = [&](Vertex u, std::uint32_t from,
                               std::uint32_t to) {
        spec_color[u] = static_cast<std::int32_t>(to);
        --load_now[from];
        ++load_now[to];
        for (const Vertex x : g.neighbors(u)) {
          --cnt[static_cast<std::size_t>(x) * k + from];
          ++cnt[static_cast<std::size_t>(x) * k + to];
        }
      };
      const auto commit_to = [&](Vertex v, std::uint32_t m) {
        spec_color[v] = static_cast<std::int32_t>(m);
        ++load_now[m];
        for (const Vertex x : g.neighbors(v)) {
          ++cnt[static_cast<std::size_t>(x) * k + m];
        }
      };
      const auto uncommit = [&](Vertex u, std::uint32_t from) {
        spec_color[u] = kUnassignedModule;
        --load_now[from];
        for (const Vertex x : g.neighbors(u)) {
          --cnt[static_cast<std::size_t>(x) * k + from];
        }
      };
      // Exchange trial (see below): walk module m's holders inside N(v),
      // relocating each to a free module (no cost) or evicting it (its own,
      // smaller duplication bill). Trials run against the live cnt table so
      // holder interactions — adjacent holders competing for the same
      // destinations — are priced exactly, then roll back. Returns the
      // eviction bill, or UINT64_MAX if infeasible / not strictly under
      // `limit`. With keep == true the moves stand, the evicted vertices
      // rejoin the queue, and v claims m.
      struct ExchangeStep {
        Vertex u;
        std::uint32_t from;
        std::int32_t to;  // < 0: evicted
      };
      std::vector<ExchangeStep> xlog;
      std::vector<Vertex> holders;
      const auto try_exchange = [&](Vertex v, std::uint32_t m,
                                    std::uint64_t limit,
                                    bool keep) -> std::uint64_t {
        holders.clear();
        for (const Vertex u : g.neighbors(v)) {
          if (committed_module(u) == static_cast<std::int32_t>(m)) {
            holders.push_back(u);
          }
        }
        xlog.clear();
        std::uint64_t cost = 0;
        bool ok = true;
        for (const Vertex u : holders) {
          if (spec_color[u] < 0) {
            ok = false;  // decided by an earlier atom or stage: immovable
            break;
          }
          const std::uint32_t mask = avail_of(u) & ~(1u << m);
          if (mask != 0) {
            const std::uint32_t dst = pick_dst(mask);
            move_to(u, m, dst);
            xlog.push_back({u, m, static_cast<std::int32_t>(dst)});
          } else if (never_remove.empty() || !never_remove[u]) {
            // max(S, 1): a zero-weight eviction still costs one unit, so
            // Σ max(S, 1) over the removal list strictly decreases with
            // every accepted exchange and chains cannot cycle.
            cost += std::max<std::uint64_t>(ws.s_sum[u], 1);
            if (cost >= limit) {
              ok = false;
              break;
            }
            uncommit(u, m);
            xlog.push_back({u, m, -1});
          } else {
            ok = false;
            break;
          }
        }
        if (!ok || !keep) {
          for (auto it = xlog.rbegin(); it != xlog.rend(); ++it) {
            if (it->to < 0) {
              commit_to(it->u, it->from);
            } else {
              move_to(it->u, static_cast<std::uint32_t>(it->to), it->from);
            }
          }
          return ok ? cost : UINT64_MAX;
        }
        for (const ExchangeStep& a : xlog) {
          if (a.to < 0) removal_order.push_back(a.u);
        }
        commit_to(v, m);
        return cost;
      };
      const std::size_t removed_before = removal_order.size();
      std::vector<Vertex> still_removed;
      // Index loop: evictions (below) append to removal_order, and the
      // evicted vertex gets its own rescue attempt.
      for (std::size_t ri = 0; ri < removal_order.size(); ++ri) {
        const Vertex v = removal_order[ri];
        const std::uint16_t* vrow =
            &cnt[static_cast<std::size_t>(v) * k];
        bool rescued = false;
        // A module freed entirely by earlier swaps: just take it.
        {
          const std::uint32_t mask = avail_of(v);
          if (mask != 0) {
            commit_to(v, pick_dst(mask));
            rescued = true;
          }
        }
        // Depth 1: one blocking neighbor that can step aside.
        for (std::uint32_t m = 0; m < k && !rescued; ++m) {
          if (vrow[m] != 1) continue;
          const Vertex u = holder_of(v, m);
          // Only vertices this call committed may move; decisions from
          // earlier atoms or stages stay fixed.
          if (spec_color[u] < 0) continue;
          const std::uint32_t mask = avail_of(u) & ~(1u << m);
          if (mask == 0) continue;
          move_to(u, m, pick_dst(mask));
          commit_to(v, m);
          rescued = true;
        }
        // Depth 2: the blocker is itself blocked by exactly one vertex
        // that can step aside — an augmenting chain of two moves. The
        // chain's destinations exclude both freed modules, so each hop
        // lands conflict-free and v's claim stays valid.
        for (std::uint32_t m = 0; m < k && !rescued; ++m) {
          if (vrow[m] != 1) continue;
          const Vertex u = holder_of(v, m);
          if (spec_color[u] < 0) continue;
          const std::uint16_t* urow =
              &cnt[static_cast<std::size_t>(u) * k];
          for (std::uint32_t m2 = 0; m2 < k && !rescued; ++m2) {
            if (m2 == m || urow[m2] != 1) continue;
            const Vertex x = holder_of(u, m2);
            if (spec_color[x] < 0) continue;
            const std::uint32_t mask =
                avail_of(x) & ~(1u << m2) & ~(1u << m);
            if (mask == 0) continue;
            move_to(x, m2, pick_dst(mask));
            move_to(u, m, m2);
            commit_to(v, m);
            rescued = true;
          }
        }
        if (rescued) continue;
        // Exchange: the duplication bill lands on strictly cheaper
        // neighbors. Price every module's holder set with a rolled-back
        // trial, then execute the cheapest one that undercuts S(v); ties
        // go to the lowest module index. Σ S over the removal list
        // strictly decreases with every accepted exchange (relocations are
        // free, evictions are each cheaper than v), so the appended
        // re-attempts terminate.
        std::uint64_t best_cost = std::max<std::uint64_t>(ws.s_sum[v], 1);
        std::uint32_t best_m = static_cast<std::uint32_t>(k);
        for (std::uint32_t m = 0; m < k; ++m) {
          if (vrow[m] == 0) continue;
          const std::uint64_t cost = try_exchange(v, m, best_cost, false);
          if (cost < best_cost) {
            best_cost = cost;
            best_m = m;
            if (cost == 0) break;  // free rescue, nothing can beat it
          }
        }
        if (best_m < k) {
          try_exchange(v, best_m, best_cost + 1, true);
        } else {
          still_removed.push_back(v);
        }
      }
      reclaimed += removed_before - still_removed.size();
      removal_order.swap(still_removed);
    }
  }

  stats.rounds += rounds;
  stats.chunks += chunks_dispatched;
  stats.conflicts += conflicts;
  stats.repaired += repaired;
  stats.reclaimed += reclaimed;
  PARMEM_COUNTER_ADD("assign.speculative.rounds", rounds);
  PARMEM_COUNTER_ADD("assign.speculative.chunks", chunks_dispatched);
  PARMEM_COUNTER_ADD("assign.speculative.conflicts", conflicts);
  PARMEM_COUNTER_ADD("assign.speculative.repaired", repaired);
  PARMEM_COUNTER_ADD("assign.speculative.reclaimed", reclaimed);

  if (aborted) {
    // Share exhausted (or parent tripped): discard everything. The parent
    // was only charged at round boundaries, so the sequential fall-back
    // resumes from a deterministic remainder.
    ++stats.fallbacks;
    PARMEM_COUNTER_ADD("assign.speculative.fallbacks", 1);
    return false;
  }

  // Commit. Position order for the per-module loads is already baked into
  // load_now; the result lists keep their finalization order.
  for (const Vertex v : order) {
    decided[v] = true;
    module[v] = spec_color[v];
  }
  for (const Vertex v : removal_order) result.unassigned.push_back(v);
  for (const Vertex v : forced_order) result.forced.push_back(v);
  load = std::move(load_now);
  ++stats.atoms;
  PARMEM_COUNTER_ADD("assign.speculative.atoms", 1);
  return true;
}

}  // namespace parmem::assign
