#include "sched/transfer_sched.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "support/diagnostics.h"

namespace parmem::sched {
namespace {

/// Modules a word's accesses may touch under `assignment` — conservative:
/// every copy module of every read value, the primary (lowest) module of
/// every written value, and both ports of any transfer already placed.
std::uint32_t word_port_mask(const ir::LiwWord& word,
                             const assign::AssignResult& a) {
  std::uint32_t mask = 0;
  for (const ir::TacInstr& op : word.ops) {
    if (op.op == ir::Opcode::kXfer) {
      mask |= 1u << op.xfer_src_module;
      mask |= 1u << op.xfer_dst_module;
      continue;
    }
    for (const ir::ValueId u : op.value_uses()) {
      mask |= a.placement[u];
    }
    if (ir::has_dst(op.op) && a.placement[op.dst] != 0) {
      mask |= assign::module_bit(assign::modules_of(a.placement[op.dst])[0]);
    }
  }
  return mask;
}

}  // namespace

TransferStats schedule_transfers(ir::LiwProgram& prog,
                                 const assign::AssignResult& assignment,
                                 std::size_t fu_count) {
  TransferStats stats;
  const std::size_t nwords = prog.words.size();

  // All defining words of every value. A value with several copies needs a
  // refresh transfer after *every* definition — this is what keeps copies
  // of mutable values consistent (the paper's single-assignment values have
  // one defining word, so they get exactly one transfer per extra copy).
  std::vector<std::vector<std::size_t>> def_words(prog.values.size());
  for (std::size_t w = 0; w < nwords; ++w) {
    for (const ir::TacInstr& op : prog.words[w].ops) {
      if (ir::has_dst(op.op)) def_words[op.dst].push_back(w);
    }
  }

  // End (exclusive) of each word's region in linear order.
  std::vector<std::size_t> region_end(nwords, nwords);
  for (std::size_t w = nwords; w > 0; --w) {
    const std::size_t i = w - 1;
    if (i + 1 < nwords && prog.words[i + 1].region == prog.words[i].region) {
      region_end[i] = region_end[i + 1];
    } else {
      region_end[i] = i + 1;
    }
  }

  // Pending transfers per value.
  struct Pending {
    ir::ValueId value;
    std::uint32_t src;
    std::uint32_t dst;
    std::size_t def_w;
    std::size_t deadline;  // exclusive: must be placed in a word < deadline,
                           // or in a new word inserted before it
  };
  std::vector<Pending> pending;

  for (ir::ValueId v = 0; v < prog.values.size(); ++v) {
    const assign::ModuleSet copies = assignment.placement[v];
    if (assign::copy_count(copies) < 2) continue;
    if (def_words[v].empty()) {
      // Never defined by an op: an input preset in memory. All copies are
      // preloaded with the initial image; nothing to schedule.
      stats.preloaded_copies += assign::copy_count(copies) - 1;
      continue;
    }
    const auto mods = assign::modules_of(copies);
    const std::uint32_t primary = mods[0];

    for (const std::size_t dw : def_words[v]) {
      // Deadline: before the first later use in the defining block, and
      // never past the block's end.
      std::size_t deadline = region_end[dw];
      for (std::size_t w = dw + 1; w < deadline; ++w) {
        bool uses_v = false;
        for (const ir::TacInstr& op : prog.words[w].ops) {
          for (const ir::ValueId u : op.value_uses()) uses_v |= (u == v);
        }
        if (uses_v) {
          deadline = w;
          break;
        }
      }
      for (std::size_t i = 1; i < mods.size(); ++i) {
        pending.push_back({v, primary, mods[i], dw, deadline});
      }
    }
  }

  // Try to slot each pending transfer into an existing word inside its
  // window (def_w, deadline).
  std::vector<Pending> need_new_word;
  for (const Pending& p : pending) {
    bool placed = false;
    for (std::size_t w = p.def_w + 1; w < p.deadline && !placed; ++w) {
      ir::LiwWord& word = prog.words[w];
      if (word.ops.size() >= fu_count) continue;
      const std::uint32_t ports = word_port_mask(word, assignment);
      if (ports & ((1u << p.src) | (1u << p.dst))) continue;

      ir::TacInstr xfer;
      xfer.op = ir::Opcode::kXfer;
      xfer.a = ir::Operand::val(p.value);
      xfer.xfer_src_module = p.src;
      xfer.xfer_dst_module = p.dst;
      // Keep any terminator in the last slot.
      if (!word.ops.empty() && ir::is_terminator(word.ops.back().op)) {
        word.ops.insert(word.ops.end() - 1, std::move(xfer));
      } else {
        word.ops.push_back(std::move(xfer));
      }
      ++stats.transfers;
      placed = true;
    }
    if (!placed) need_new_word.push_back(p);
  }

  // Remaining transfers need new words inserted right after their defining
  // word. Group by insertion point; pack compatibly.
  std::map<std::size_t, std::vector<ir::LiwWord>> inserts;  // after index
  for (const Pending& p : need_new_word) {
    ir::TacInstr xfer;
    xfer.op = ir::Opcode::kXfer;
    xfer.a = ir::Operand::val(p.value);
    xfer.xfer_src_module = p.src;
    xfer.xfer_dst_module = p.dst;

    auto& words = inserts[p.def_w];
    bool placed = false;
    for (ir::LiwWord& word : words) {
      if (word.ops.size() >= fu_count) continue;
      std::uint32_t ports = 0;
      for (const ir::TacInstr& op : word.ops) {
        ports |= (1u << op.xfer_src_module) | (1u << op.xfer_dst_module);
      }
      if (ports & ((1u << p.src) | (1u << p.dst))) continue;
      word.ops.push_back(xfer);
      placed = true;
      break;
    }
    if (!placed) {
      ir::LiwWord word;
      word.region = prog.words[p.def_w].region;
      word.ops.push_back(xfer);
      words.push_back(std::move(word));
      ++stats.words_added;
    }
    ++stats.transfers;
  }

  if (!inserts.empty()) {
    // If the defining word carries a terminator, the branch must move to
    // the last inserted word (control leaves only after the transfers).
    for (auto& [after, words] : inserts) {
      ir::LiwWord& dw = prog.words[after];
      if (!dw.ops.empty() && ir::is_terminator(dw.ops.back().op)) {
        words.back().ops.push_back(dw.ops.back());
        dw.ops.pop_back();
        // An emptied defining word would be illegal; it cannot happen since
        // it held at least the defining op plus the terminator.
        PARMEM_CHECK(!dw.ops.empty(), "defining word emptied by move");
      }
    }

    // Rebuild the word list and the old->new index map.
    std::vector<ir::LiwWord> rebuilt;
    std::vector<std::uint32_t> new_index(nwords, 0);
    for (std::size_t w = 0; w < nwords; ++w) {
      new_index[w] = static_cast<std::uint32_t>(rebuilt.size());
      rebuilt.push_back(std::move(prog.words[w]));
      const auto it = inserts.find(w);
      if (it != inserts.end()) {
        for (ir::LiwWord& nw : it->second) rebuilt.push_back(std::move(nw));
      }
    }
    prog.words = std::move(rebuilt);
    for (ir::LiwWord& word : prog.words) {
      for (ir::TacInstr& op : word.ops) {
        if (ir::is_terminator(op.op) && op.op != ir::Opcode::kHalt) {
          op.target = new_index[op.target];
        }
      }
    }
  }
  return stats;
}

}  // namespace parmem::sched
