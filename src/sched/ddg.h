// Intra-block data-dependence graphs.
//
// The list scheduler packs a basic block's TAC into long instruction words;
// two operations may share a word only if neither depends on the other
// (lock-step semantics: all reads of a word see pre-word state). Edges:
//
//   RAW  def(v) -> use(v)
//   WAR  use(v) -> def(v)      (a later def may not enter the same word)
//   WAW  def(v) -> def(v)
//   array: load/store on the SAME array are ordered conservatively except
//          load-load (no index analysis — run-time banks are the paper's
//          Table 2 territory, not the compile-time problem);
//   print/halt: totally ordered among themselves (program output order);
//   terminator: after everything in the block.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/region.h"
#include "ir/tac.h"

namespace parmem::sched {

/// Dependence graph over the instructions [first, last) of one basic block;
/// node i corresponds to instruction first + i.
struct BlockDdg {
  std::uint32_t first = 0;
  std::uint32_t count = 0;
  /// succs[i]: nodes that must be scheduled strictly after node i.
  std::vector<std::vector<std::uint32_t>> succs;
  /// Number of unscheduled predecessors (used as the ready-set counter).
  std::vector<std::uint32_t> pred_count;
  /// Critical-path height (1 for sinks) — the scheduling priority.
  std::vector<std::uint32_t> height;

  static BlockDdg build(const ir::TacProgram& prog, const ir::Region& region);
};

}  // namespace parmem::sched
