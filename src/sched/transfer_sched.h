// Compile-time scheduling of inter-module data transfers.
//
// The assignment phase may give a single-assignment value copies in several
// modules. Physically, the defining operation writes one module (the
// value's primary copy); every further copy is realized by an explicit
// transfer operation — "multiple copies can be created by data transfers
// among memory modules that are scheduled at compile-time" (§1). This pass
// places one kXfer op per extra copy:
//
//   * in the defining word's block, after the definition;
//   * in an existing word when a functional-unit slot is free and the
//     transfer's two module ports are not used by that word's accesses
//     under the current assignment;
//   * otherwise in a freshly inserted word (costing one cycle).
//
// Values never defined by an op (e.g. inputs preset in memory) need no
// transfer — all copies are preloaded, like initialized data.
#pragma once

#include <cstdint>

#include "assign/assigner.h"
#include "ir/liw.h"

namespace parmem::sched {

struct TransferStats {
  std::size_t transfers = 0;       // kXfer ops inserted
  std::size_t words_added = 0;     // new words that had to be created
  std::size_t preloaded_copies = 0;  // copies of undefined (input) values
};

/// Inserts transfer ops into `prog` for every extra copy in `assignment`.
/// `fu_count` bounds ops per word. Returns what was done.
TransferStats schedule_transfers(ir::LiwProgram& prog,
                                 const assign::AssignResult& assignment,
                                 std::size_t fu_count);

}  // namespace parmem::sched
