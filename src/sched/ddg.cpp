#include "sched/ddg.h"

#include <algorithm>
#include <map>
#include <set>

#include "support/diagnostics.h"

namespace parmem::sched {

BlockDdg BlockDdg::build(const ir::TacProgram& prog,
                         const ir::Region& region) {
  BlockDdg ddg;
  ddg.first = region.first;
  ddg.count = region.last - region.first;
  ddg.succs.assign(ddg.count, {});
  ddg.pred_count.assign(ddg.count, 0);

  std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
  const auto add_edge = [&](std::uint32_t from, std::uint32_t to) {
    if (from == to) return;
    PARMEM_CHECK(from < to, "dependence edges must follow program order");
    if (edges.insert({from, to}).second) {
      ddg.succs[from].push_back(to);
      ++ddg.pred_count[to];
    }
  };

  std::map<ir::ValueId, std::uint32_t> last_def;
  std::map<ir::ValueId, std::vector<std::uint32_t>> uses_since_def;
  std::map<ir::ArrayId, std::uint32_t> last_store;
  std::map<ir::ArrayId, std::vector<std::uint32_t>> loads_since_store;
  std::int64_t last_output = -1;  // print ordering

  for (std::uint32_t n = 0; n < ddg.count; ++n) {
    const ir::TacInstr& in = prog.instrs[region.first + n];

    // RAW: uses depend on the latest def.
    for (const ir::ValueId u : in.value_uses()) {
      const auto d = last_def.find(u);
      if (d != last_def.end()) add_edge(d->second, n);
      uses_since_def[u].push_back(n);
    }

    if (ir::has_dst(in.op)) {
      const ir::ValueId d = in.dst;
      // WAW.
      const auto pd = last_def.find(d);
      if (pd != last_def.end()) add_edge(pd->second, n);
      // WAR: all uses since the previous def precede this def.
      for (const std::uint32_t u : uses_since_def[d]) add_edge(u, n);
      uses_since_def[d].clear();
      last_def[d] = n;
    }

    // Array ordering.
    if (in.op == ir::Opcode::kLoad) {
      const auto s = last_store.find(in.array);
      if (s != last_store.end()) add_edge(s->second, n);
      loads_since_store[in.array].push_back(n);
    } else if (in.op == ir::Opcode::kStore) {
      const auto s = last_store.find(in.array);
      if (s != last_store.end()) add_edge(s->second, n);  // store-store
      for (const std::uint32_t l : loads_since_store[in.array]) {
        add_edge(l, n);  // load-store
      }
      loads_since_store[in.array].clear();
      last_store[in.array] = n;
    }

    // Output ordering.
    if (in.op == ir::Opcode::kPrint) {
      if (last_output >= 0) {
        add_edge(static_cast<std::uint32_t>(last_output), n);
      }
      last_output = static_cast<std::int64_t>(n);
    }

    // Terminator: after everything else in the block.
    if (ir::is_terminator(in.op)) {
      PARMEM_CHECK(n + 1 == ddg.count,
                   "terminator must be the block's last instruction");
      for (std::uint32_t m = 0; m < n; ++m) add_edge(m, n);
    }
  }

  // Critical-path heights (reverse topological order == reverse program
  // order, since all edges point forward).
  ddg.height.assign(ddg.count, 1);
  for (std::uint32_t n = ddg.count; n > 0; --n) {
    const std::uint32_t i = n - 1;
    for (const std::uint32_t s : ddg.succs[i]) {
      ddg.height[i] = std::max(ddg.height[i], ddg.height[s] + 1);
    }
  }
  return ddg;
}

}  // namespace parmem::sched
