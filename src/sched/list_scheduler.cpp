#include "sched/list_scheduler.h"

#include <algorithm>
#include <set>

#include "sched/ddg.h"
#include "support/diagnostics.h"

namespace parmem::sched {

ir::LiwProgram schedule(const ir::TacProgram& prog, const SchedOptions& opts,
                        SchedStats* stats) {
  PARMEM_CHECK(opts.fu_count >= 1, "need at least one functional unit");
  PARMEM_CHECK(opts.module_count >= 1, "need at least one memory module");

  const ir::RegionGraph rg = ir::RegionGraph::build(prog);
  ir::LiwProgram out;
  out.name = prog.name;
  out.values = prog.values;
  out.arrays = prog.arrays;

  // First word index of every region (for branch patching).
  std::vector<std::uint32_t> region_start(rg.regions.size(), 0);

  for (const ir::Region& region : rg.regions) {
    region_start[region.id] = static_cast<std::uint32_t>(out.words.size());
    BlockDdg ddg = BlockDdg::build(prog, region);

    std::vector<bool> scheduled(ddg.count, false);
    std::vector<std::uint32_t> remaining_preds = ddg.pred_count;
    std::size_t left = ddg.count;

    while (left > 0) {
      // Ready ops, by descending height then program order.
      std::vector<std::uint32_t> ready;
      for (std::uint32_t n = 0; n < ddg.count; ++n) {
        if (!scheduled[n] && remaining_preds[n] == 0) ready.push_back(n);
      }
      PARMEM_CHECK(!ready.empty(), "dependence cycle in a basic block");
      if (opts.priority == SchedPriority::kCriticalPath) {
        std::stable_sort(ready.begin(), ready.end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                           return ddg.height[a] > ddg.height[b];
                         });
      }  // kSourceOrder: the ready list is already in program order.

      ir::LiwWord word;
      word.region = region.id;
      std::set<ir::ValueId> reads;
      std::vector<std::uint32_t> taken;
      bool has_terminator = false;

      for (const std::uint32_t n : ready) {
        if (word.ops.size() >= opts.fu_count) break;
        const ir::TacInstr& in = prog.instrs[ddg.first + n];
        if (ir::is_terminator(in.op)) {
          // A terminator may only join a word if every other block op is
          // already scheduled or joins this same word — its DDG preds
          // enforce that; but it must also be the last slot.
          if (has_terminator) continue;
        }
        // Module-count constraint on distinct scalar reads.
        std::set<ir::ValueId> with = reads;
        for (const ir::ValueId u : in.value_uses()) with.insert(u);
        if (with.size() > opts.module_count) continue;

        reads = std::move(with);
        taken.push_back(n);
        word.ops.push_back(in);
        if (ir::is_terminator(in.op)) has_terminator = true;
      }
      PARMEM_CHECK(!taken.empty(), "scheduler made no progress");

      // Keep the terminator in the final slot.
      if (has_terminator) {
        for (std::size_t s = 0; s + 1 < word.ops.size(); ++s) {
          if (ir::is_terminator(word.ops[s].op)) {
            std::swap(word.ops[s], word.ops.back());
            break;
          }
        }
      }

      for (const std::uint32_t n : taken) {
        scheduled[n] = true;
        --left;
        for (const std::uint32_t s : ddg.succs[n]) --remaining_preds[s];
      }
      out.words.push_back(std::move(word));
    }
  }

  // Patch branch targets: instruction index -> region -> first word.
  for (ir::LiwWord& word : out.words) {
    for (ir::TacInstr& op : word.ops) {
      if (ir::is_terminator(op.op) && op.op != ir::Opcode::kHalt) {
        const ir::RegionId target_region = rg.region_of[op.target];
        PARMEM_CHECK(prog.instrs[op.target].op != ir::Opcode::kNop ||
                         true,
                     "");
        PARMEM_CHECK(rg.regions[target_region].first == op.target,
                     "branch target must be a region leader");
        op.target = region_start[target_region];
      }
    }
  }

  ir::validate_liw(out, opts.fu_count);
  if (stats != nullptr) {
    stats->words = out.words.size();
    stats->ops = 0;
    for (const ir::LiwWord& w : out.words) stats->ops += w.ops.size();
  }
  return out;
}

}  // namespace parmem::sched
