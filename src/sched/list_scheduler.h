// List scheduler: TAC -> long instruction words.
//
// The paper's compiler "generates all of the instructions without assigning
// physical memory modules for the operand values. Symbolic addresses are
// assigned to data values during scheduling" (§2). This scheduler compacts
// each basic block into words under two resource constraints:
//
//   * at most `fu_count` operations per word (one per functional unit);
//   * at most `module_count` distinct scalar operand reads per word — a
//     word fetching more scalars than there are modules could never be
//     conflict-free, whatever the assignment.
//
// Dependences come from BlockDdg; priority is critical-path height. Branch
// targets are rewritten from instruction indices to word indices.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ir/liw.h"
#include "ir/tac.h"

namespace parmem::sched {

/// Ready-op priority for list scheduling.
enum class SchedPriority : std::uint8_t {
  kCriticalPath,  // longest dependence chain first (default)
  kSourceOrder,   // original program order (the naive baseline)
};

struct SchedOptions {
  std::size_t fu_count = 8;
  std::size_t module_count = 8;
  SchedPriority priority = SchedPriority::kCriticalPath;
};

struct SchedStats {
  std::size_t words = 0;
  std::size_t ops = 0;
  /// ops / words: the packing density the speedup bench reports.
  double ilp() const {
    return words == 0 ? 0.0
                      : static_cast<double>(ops) / static_cast<double>(words);
  }
};

/// Schedules `prog`; fills `stats` if non-null.
ir::LiwProgram schedule(const ir::TacProgram& prog, const SchedOptions& opts,
                        SchedStats* stats = nullptr);

}  // namespace parmem::sched
