#include "workloads/workloads.h"

#include "support/diagnostics.h"

namespace parmem::workloads {
namespace {

// ---------------------------------------------------------------------
// TAYLOR1: Taylor coefficients of the complex analytic function
// f(z) = exp(c z), c = 0.8 + 0.6i, via the recurrence a_n = a_{n-1} c / n,
// followed by a complex Horner evaluation of the partial sum.
// ---------------------------------------------------------------------
const char* kTaylor1 = R"mc(
# TAYLOR1 - Taylor coefficients of a complex analytic function.
func main() {
  array are: real[12];
  array aim: real[12];
  var cre: real = 0.8;
  var cim: real = 0.6;
  are[0] = 1.0;
  aim[0] = 0.0;
  var n: int;
  for n = 1 to 11 {
    var pre: real = are[n - 1] * cre - aim[n - 1] * cim;
    var pim: real = are[n - 1] * cim + aim[n - 1] * cre;
    are[n] = pre / real(n);
    aim[n] = pim / real(n);
  }

  # Evaluate the truncated series at z = 0.5 - 0.25i with complex Horner.
  var zre: real = 0.5;
  var zim: real = -0.25;
  var sre: real = 0.0;
  var sim: real = 0.0;
  var i: int;
  for i = 0 to 11 {
    var j: int = 11 - i;
    var tre: real = sre * zre - sim * zim + are[j];
    var tim: real = sre * zim + sim * zre + aim[j];
    sre = tre;
    sim = tim;
  }
  print(sre);
  print(sim);
  print(are[5]);
  print(aim[5]);
}
)mc";

// ---------------------------------------------------------------------
// TAYLOR2: Taylor coefficients of the real analytic function
// g(x) = exp(x) sin(x), via the Cauchy product of the two series.
// ---------------------------------------------------------------------
const char* kTaylor2 = R"mc(
# TAYLOR2 - Taylor coefficients of a real analytic function.
func main() {
  array e: real[14];
  array s: real[14];
  array g: real[14];

  # exp(x): e_n = 1/n!; sin(x): s_n = 0, 1, 0, -1/6, ...
  e[0] = 1.0;
  s[0] = 0.0;
  var n: int;
  for n = 1 to 13 {
    e[n] = e[n - 1] / real(n);
    var m: int = n % 2;
    if (m == 0) {
      s[n] = 0.0;
    } else {
      # s_n = (-1)^((n-1)/2) / n!
      var half: int = (n - 1) / 2;
      var sign: real = 1.0;
      if (half % 2 == 1) { sign = -1.0; }
      s[n] = sign * e[n];
    }
  }

  # Cauchy product g_n = sum_{k=0..n} e_k * s_{n-k}.
  for n = 0 to 13 {
    var acc: real = 0.0;
    var k: int;
    for k = 0 to n {
      acc = acc + e[k] * s[n - k];
    }
    g[n] = acc;
  }
  print(g[1]);
  print(g[2]);
  print(g[3]);
  print(g[5]);
  print(g[7]);
}
)mc";

// ---------------------------------------------------------------------
// EXACT: exact solution of an integer linear system by residue (modular)
// arithmetic - Cramer's rule over several primes combined by the Chinese
// remainder theorem. The system A x = b has solution x = (1, 2, 3).
// ---------------------------------------------------------------------
const char* kExact = R"mc(
# EXACT - linear equations by residue arithmetic (Cramer + CRT).
func norm(x: int, p: int): int {
  return ((x % p) + p) % p;
}

func powmod(a: int, e: int, p: int): int {
  var r: int = 1;
  var base: int = ((a % p) + p) % p;
  var k: int = e;
  while (k > 0) {
    if (k % 2 == 1) {
      r = (r * base) % p;
    }
    base = (base * base) % p;
    k = k / 2;
  }
  return r;
}

func det3(a11: int, a12: int, a13: int,
          a21: int, a22: int, a23: int,
          a31: int, a32: int, a33: int, p: int): int {
  var d: int = a11 * (a22 * a33 - a23 * a32)
             - a12 * (a21 * a33 - a23 * a31)
             + a13 * (a21 * a32 - a22 * a31);
  return norm(d, p);
}

func main() {
  # A = [[2,1,1],[1,3,2],[1,0,2]], b = (7,13,7); x = (1,2,3).
  array primes: int[3];
  primes[0] = 101;
  primes[1] = 103;
  primes[2] = 107;

  array x0: int[3];  # residue of x_0 per prime
  array x1: int[3];
  array x2: int[3];

  var t: int;
  for t = 0 to 2 {
    var p: int = primes[t];
    var d: int = det3(2, 1, 1, 1, 3, 2, 1, 0, 2, p);
    var dinv: int = powmod(d, p - 2, p);
    # Cramer numerators: replace each column by b.
    var d0: int = det3(7, 1, 1, 13, 3, 2, 7, 0, 2, p);
    var d1: int = det3(2, 7, 1, 1, 13, 2, 1, 7, 2, p);
    var d2: int = det3(2, 1, 7, 1, 3, 13, 1, 0, 7, p);
    x0[t] = (d0 * dinv) % p;
    x1[t] = (d1 * dinv) % p;
    x2[t] = (d2 * dinv) % p;
  }

  # CRT-combine each component and map to the symmetric range.
  var comp: int;
  for comp = 0 to 2 {
    var x: int;
    if (comp == 0) { x = x0[0]; }
    else { if (comp == 1) { x = x1[0]; } else { x = x2[0]; } }
    var bigm: int = primes[0];
    var j: int;
    for j = 1 to 2 {
      var p: int = primes[j];
      var r: int;
      if (comp == 0) { r = x0[j]; }
      else { if (comp == 1) { r = x1[j]; } else { r = x2[j]; } }
      var minv: int = powmod(bigm % p, p - 2, p);
      var diff: int = norm(r - x, p);
      var tt: int = (diff * minv) % p;
      x = x + bigm * tt;
      bigm = bigm * p;
    }
    if (x > bigm / 2) {
      x = x - bigm;
    }
    print(x);
  }
}
)mc";

// ---------------------------------------------------------------------
// FFT: iterative radix-2 decimation-in-time FFT, size 16, on a cosine
// test signal; prints selected spectral magnitudes (squared).
// ---------------------------------------------------------------------
const char* kFft = R"mc(
# FFT - radix-2 iterative fast Fourier transform, N = 16.
func main() {
  array re: real[16];
  array im: real[16];
  var pi: real = 3.14159265358979;
  var n: int = 16;

  # Test signal: x[t] = cos(2 pi 3 t / N) + 0.5; peak expected at bin 3.
  var t: int;
  for t = 0 to 15 {
    re[t] = cos(2.0 * pi * 3.0 * real(t) / real(n)) + 0.5;
    im[t] = 0.0;
  }

  # Bit-reversal permutation (4 bits).
  for t = 0 to 15 {
    var rev: int = 0;
    var v: int = t;
    var b: int;
    for b = 0 to 3 {
      rev = rev * 2 + v % 2;
      v = v / 2;
    }
    if (rev > t) {
      var tmpr: real = re[t];
      var tmpi: real = im[t];
      re[t] = re[rev];
      im[t] = im[rev];
      re[rev] = tmpr;
      im[rev] = tmpi;
    }
  }

  # Butterflies: stages len = 2, 4, 8, 16.
  var len: int = 2;
  while (len <= n) {
    var half: int = len / 2;
    var start: int = 0;
    while (start < n) {
      var j: int;
      for j = 0 to half - 1 {
        var ang: real = -2.0 * pi * real(j) / real(len);
        var wr: real = cos(ang);
        var wi: real = sin(ang);
        var i1: int = start + j;
        var i2: int = start + j + half;
        var xr: real = re[i2] * wr - im[i2] * wi;
        var xi: real = re[i2] * wi + im[i2] * wr;
        re[i2] = re[i1] - xr;
        im[i2] = im[i1] - xi;
        re[i1] = re[i1] + xr;
        im[i1] = im[i1] + xi;
      }
      start = start + len;
    }
    len = len * 2;
  }

  # Squared magnitudes of bins 0..4.
  var b2: int;
  for b2 = 0 to 4 {
    print(re[b2] * re[b2] + im[b2] * im[b2]);
  }
}
)mc";

// ---------------------------------------------------------------------
// SORT: iterative quicksort (explicit stack, Lomuto partition) over 32
// pseudo-random values from a linear congruential generator.
// ---------------------------------------------------------------------
const char* kSort = R"mc(
# SORT - quicksort with an explicit stack.
func main() {
  array a: int[32];
  array stlo: int[32];
  array sthi: int[32];
  var n: int = 32;

  # LCG fill.
  var seed: int = 12345;
  var i: int;
  for i = 0 to 31 {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    a[i] = seed % 1000;
  }

  var top: int = 0;
  stlo[0] = 0;
  sthi[0] = n - 1;
  while (top >= 0) {
    var lo: int = stlo[top];
    var hi: int = sthi[top];
    top = top - 1;
    if (lo < hi) {
      # Lomuto partition, pivot = a[hi].
      var pivot: int = a[hi];
      var p: int = lo;
      var j: int;
      for j = lo to hi - 1 {
        if (a[j] < pivot) {
          var tmp: int = a[j];
          a[j] = a[p];
          a[p] = tmp;
          p = p + 1;
        }
      }
      var tmp2: int = a[hi];
      a[hi] = a[p];
      a[p] = tmp2;

      top = top + 1;
      stlo[top] = lo;
      sthi[top] = p - 1;
      top = top + 1;
      stlo[top] = p + 1;
      sthi[top] = hi;
    }
  }

  for i = 0 to 31 {
    print(a[i]);
  }
}
)mc";

// ---------------------------------------------------------------------
// COLOR: the paper's own experiment includes "the graph coloring algorithm
// presented in this paper" - a weighted greedy coloring in the spirit of
// Fig. 4: color vertices in order of decreasing conflict weight; a vertex
// whose neighbors exhaust the k colors is removed (V_unassigned).
// ---------------------------------------------------------------------
const char* kColor = R"mc(
# COLOR - greedy conflict-graph coloring (simplified Fig. 4).
func main() {
  var n: int = 8;
  var k: int = 3;
  array adj: int[64];     # adjacency matrix, row-major
  array deg: int[8];
  array color: int[8];    # -1 = uncolored, -2 = removed
  array done: int[8];

  # Build a graph: wheel-like pattern plus a chord.
  var i: int;
  var j: int;
  for i = 0 to 63 {
    adj[i] = 0;
  }
  for i = 0 to 6 {
    adj[i * 8 + (i + 1)] = 1;      # path 0-1-...-7
    adj[(i + 1) * 8 + i] = 1;
  }
  for i = 1 to 6 {
    adj[0 * 8 + i] = 1;            # hub 0 adjacent to 1..6
    adj[i * 8 + 0] = 1;
  }
  adj[2 * 8 + 5] = 1;              # chord 2-5
  adj[5 * 8 + 2] = 1;

  for i = 0 to 7 {
    var d: int = 0;
    for j = 0 to 7 {
      d = d + adj[i * 8 + j];
    }
    deg[i] = d;
    color[i] = -1;
    done[i] = 0;
  }

  var removed: int = 0;
  var step: int;
  for step = 0 to 7 {
    # Pick the undone vertex with max (colored-neighbor count, degree).
    # Comparisons evaluate to 0/1 ints, so the counting loops are written
    # branch-free, FORTRAN-style: long straight-line bodies pack well.
    var best: int = -1;
    var bestkey: int = -1;
    for i = 0 to 7 {
      var cn: int = 0;
      for j = 0 to 7 {
        cn = cn + adj[i * 8 + j] * (color[j] >= 0);
      }
      var key: int = cn * 16 + deg[i];
      var take: int = (done[i] == 0) * (key > bestkey);
      bestkey = take * key + (1 - take) * bestkey;
      best = take * i + (1 - take) * best;
    }

    # Smallest color unused by best's neighbors.
    var c: int;
    var chosen: int = -1;
    for c = 0 to 2 {
      var used: int = 0;
      for j = 0 to 7 {
        used = used + adj[best * 8 + j] * (color[j] == c);
      }
      var pick: int = (chosen == -1) * (used == 0);
      chosen = pick * c + (1 - pick) * chosen;
    }
    if (chosen >= 0) {
      color[best] = chosen;
    } else {
      color[best] = -2;
      removed = removed + 1;
    }
    done[best] = 1;
  }

  for i = 0 to 7 {
    print(color[i]);
  }
  print(removed);
  print(k);
}
)mc";

}  // namespace

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> kAll{
      {"TAYLOR1", "Taylor coefficients of a complex analytic function",
       kTaylor1},
      {"TAYLOR2", "Taylor coefficients of a real analytic function",
       kTaylor2},
      {"EXACT", "linear equations via residue arithmetic", kExact},
      {"FFT", "radix-2 fast Fourier transform", kFft},
      {"SORT", "quicksort with an explicit stack", kSort},
      {"COLOR", "the paper's graph coloring heuristic", kColor},
  };
  return kAll;
}

const Workload& workload(const std::string& name) {
  for (const Workload& w : all_workloads()) {
    if (w.name == name) return w;
  }
  throw support::UserError("unknown workload '" + name + "'");
}

}  // namespace parmem::workloads
