#include "workloads/stream_gen.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace parmem::workloads {

ir::AccessStream random_stream(const StreamGenOptions& opts,
                               support::SplitMix64& rng) {
  PARMEM_CHECK(opts.value_count >= 2, "need at least two values");
  PARMEM_CHECK(opts.min_width >= 1 && opts.min_width <= opts.max_width,
               "bad width range");

  const std::size_t max_w = std::min(opts.max_width, opts.value_count);
  const std::size_t min_w = std::min(opts.min_width, max_w);

  std::vector<std::vector<ir::ValueId>> tuples;
  tuples.reserve(opts.tuple_count);
  for (std::size_t t = 0; t < opts.tuple_count; ++t) {
    const std::size_t w =
        min_w + static_cast<std::size_t>(rng.below(max_w - min_w + 1));

    // Value pool: either the whole space or a sliding locality window.
    std::size_t lo = 0, span = opts.value_count;
    if (opts.locality_window >= w && opts.locality_window < opts.value_count) {
      span = opts.locality_window;
      // Window slides with t so nearby instructions share values.
      lo = (t * (opts.value_count - span)) /
           std::max<std::size_t>(opts.tuple_count - 1, 1);
    }

    std::vector<ir::ValueId> ops;
    while (ops.size() < w) {
      const auto v = static_cast<ir::ValueId>(lo + rng.below(span));
      if (std::find(ops.begin(), ops.end(), v) == ops.end()) ops.push_back(v);
    }
    tuples.push_back(std::move(ops));
  }

  ir::AccessStream s =
      ir::AccessStream::from_tuples(opts.value_count, std::move(tuples));

  // Contiguous region blocks; values seen in more than one region become
  // global.
  std::vector<ir::RegionId> first_region(opts.value_count, ir::kNoRegion);
  for (std::size_t t = 0; t < s.tuples.size(); ++t) {
    const auto r = static_cast<ir::RegionId>(
        t * opts.region_count / std::max<std::size_t>(s.tuples.size(), 1));
    s.tuples[t].region = r;
    for (const ir::ValueId v : s.tuples[t].operands) {
      if (first_region[v] == ir::kNoRegion) {
        first_region[v] = r;
      } else if (first_region[v] != r) {
        s.global[v] = true;
      }
    }
  }
  return s;
}

ir::AccessStream modular_stream(const ModularStreamOptions& opts,
                                support::SplitMix64& rng) {
  PARMEM_CHECK(opts.block_count >= 1, "need at least one block");
  PARMEM_CHECK(opts.values_per_block >= 4, "blocks need at least four values");
  PARMEM_CHECK(opts.min_width >= 1 && opts.min_width <= opts.max_width,
               "bad width range");
  PARMEM_CHECK(opts.tuples_per_block >= 2, "need at least two tuples/block");

  const std::size_t bv = opts.values_per_block;
  const std::size_t max_w = std::min(opts.max_width, bv);
  const std::size_t min_w = std::min(opts.min_width, max_w);
  const std::size_t n = opts.block_count * bv;

  std::vector<std::vector<ir::ValueId>> tuples;
  tuples.reserve(opts.block_count * (opts.tuples_per_block + opts.bridge_tuples));
  for (std::size_t b = 0; b < opts.block_count; ++b) {
    const std::size_t base = b * bv;
    for (std::size_t t = 0; t < opts.tuples_per_block; ++t) {
      const std::size_t w =
          min_w + static_cast<std::size_t>(rng.below(max_w - min_w + 1));
      std::size_t lo = base, span = bv;
      if (opts.locality_window >= w && opts.locality_window < bv) {
        span = opts.locality_window;
        lo = base + (t * (bv - span)) / (opts.tuples_per_block - 1);
      }
      std::vector<ir::ValueId> ops;
      while (ops.size() < w) {
        const auto v = static_cast<ir::ValueId>(lo + rng.below(span));
        if (std::find(ops.begin(), ops.end(), v) == ops.end()) ops.push_back(v);
      }
      tuples.push_back(std::move(ops));
    }
    if (b + 1 < opts.block_count) {
      // The two trailing values of block b form the clique separator to
      // block b+1: every bridge tuple contains both, so they are mutually
      // adjacent and every inter-block path crosses them.
      const auto s0 = static_cast<ir::ValueId>(base + bv - 2);
      const auto s1 = static_cast<ir::ValueId>(base + bv - 1);
      for (std::size_t j = 0; j < opts.bridge_tuples; ++j) {
        const auto x = static_cast<ir::ValueId>(
            (b + 1) * bv + rng.below(std::min<std::size_t>(bv, 16)));
        tuples.push_back({s0, s1, x});
      }
    }
  }

  ir::AccessStream s = ir::AccessStream::from_tuples(n, std::move(tuples));

  // One region per block; bridge values (touched from both sides) become
  // global, mirroring random_stream's convention.
  std::vector<ir::RegionId> first_region(n, ir::kNoRegion);
  for (auto& tuple : s.tuples) {
    ir::ValueId lead = tuple.operands.front();
    const auto r = static_cast<ir::RegionId>(lead / bv);
    tuple.region = r;
    for (const ir::ValueId v : tuple.operands) {
      if (first_region[v] == ir::kNoRegion) {
        first_region[v] = r;
      } else if (first_region[v] != r) {
        s.global[v] = true;
      }
    }
  }
  return s;
}

}  // namespace parmem::workloads
