// The paper's six benchmark programs (§3), re-derived in MC.
//
// "The test cases include programs to compute Taylor coefficients for
// complex (TAYLOR1) and real (TAYLOR2) analytic functions, solve a set of
// linear equations using residue arithmetic (EXACT), fast Fourier transform
// (FFT), sorting using quicksort (SORT) and the graph coloring algorithm
// (COLOR) presented in this paper."
//
// The original FORTRAN-dialect sources are lost; these are the same
// algorithms at laptop-test sizes. What Table 1 measures — the mix of
// scalars and temporaries fetched together by packed long instructions —
// depends on the algorithm structure, not the problem size.
#pragma once

#include <string>
#include <vector>

namespace parmem::workloads {

struct Workload {
  std::string name;
  std::string description;
  std::string source;  // MC program text
};

/// TAYLOR1, TAYLOR2, EXACT, FFT, SORT, COLOR — in the paper's order.
const std::vector<Workload>& all_workloads();

/// Lookup by name; throws support::UserError for unknown names.
const Workload& workload(const std::string& name);

}  // namespace parmem::workloads
