// Synthetic access-stream generators for stress tests and scaling benches.
//
// Real programs give Table 1 its shape; these generators give the scaling
// benches controllable knobs: value count, instruction count, operand
// width, region structure, and conflict density.
#pragma once

#include <cstddef>

#include "ir/access.h"
#include "support/rng.h"

namespace parmem::workloads {

struct StreamGenOptions {
  std::size_t value_count = 64;
  std::size_t tuple_count = 128;
  std::size_t min_width = 2;
  std::size_t max_width = 4;   // capped at value_count
  std::size_t region_count = 1;
  /// Locality: each tuple draws values from a sliding window of this size
  /// over the value space (0 = global uniform). Small windows produce the
  /// clique-separator structure §2.1's atom decomposition exploits.
  std::size_t locality_window = 0;
};

/// Generates a random stream; all values duplicable, contiguous region
/// blocks, cross-region values marked global.
ir::AccessStream random_stream(const StreamGenOptions& opts,
                               support::SplitMix64& rng);

}  // namespace parmem::workloads
