// Synthetic access-stream generators for stress tests and scaling benches.
//
// Real programs give Table 1 its shape; these generators give the scaling
// benches controllable knobs: value count, instruction count, operand
// width, region structure, and conflict density.
#pragma once

#include <cstddef>

#include "ir/access.h"
#include "support/rng.h"

namespace parmem::workloads {

struct StreamGenOptions {
  std::size_t value_count = 64;
  std::size_t tuple_count = 128;
  std::size_t min_width = 2;
  std::size_t max_width = 4;   // capped at value_count
  std::size_t region_count = 1;
  /// Locality: each tuple draws values from a sliding window of this size
  /// over the value space (0 = global uniform). Small windows produce the
  /// clique-separator structure §2.1's atom decomposition exploits.
  std::size_t locality_window = 0;
};

/// Generates a random stream; all values duplicable, contiguous region
/// blocks, cross-region values marked global.
ir::AccessStream random_stream(const StreamGenOptions& opts,
                               support::SplitMix64& rng);

struct ModularStreamOptions {
  /// Independent value blocks (≈ procedures / compilation units). Each
  /// becomes one or more atoms; consecutive blocks are joined by a small
  /// clique of bridge values, so the decomposition recovers the blocks.
  std::size_t block_count = 16;
  std::size_t values_per_block = 256;
  std::size_t tuples_per_block = 1200;
  std::size_t min_width = 2;
  std::size_t max_width = 4;
  /// Sliding locality window inside each block (see StreamGenOptions).
  std::size_t locality_window = 24;
  /// Bridge tuples emitted per block boundary; each co-accesses the two
  /// trailing values of the left block with one value of the right block.
  std::size_t bridge_tuples = 6;
};

/// Generates a block-structured stream: tuples stay inside their block
/// except for small clique bridges between neighbours. Unlike a single
/// sliding window over the whole value space (which yields one monolithic
/// atom at realistic densities), this is the shape §2.1's decomposition is
/// built for — many atoms joined by clique separators — and is the target
/// class for incremental recompilation: an edit inside one block leaves
/// every other block's atoms byte-identical. One region per block.
ir::AccessStream modular_stream(const ModularStreamOptions& opts,
                                support::SplitMix64& rng);

}  // namespace parmem::workloads
