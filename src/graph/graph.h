// Undirected simple graph.
//
// This is the substrate for the paper's access-conflict graphs (§2): nodes
// are data values, edges join values that appear as operands of the same
// long instruction. It keeps neighbor lists sorted so algorithms get
// deterministic iteration order, and it has two representations:
//
//  * a mutable build form — vector-of-vectors adjacency, grown by
//    add_edge();
//  * a packed CSR form — one offsets array plus one flat neighbors array,
//    augmented (for small graphs) with a word-packed adjacency bitset for
//    O(1) has_edge and word-parallel is_clique.
//
// finalize() converts build form to CSR; any later add_edge falls back to
// the build form transparently. Exactly one representation is live at a
// time, and no const member mutates state, so a finalized Graph is safe to
// share read-only across threads. Every query answers identically in both
// forms — CSR is a layout change, not a semantic one.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "support/rng.h"

namespace parmem::graph {

using Vertex = std::uint32_t;

class Graph {
 public:
  /// Creates a graph with `n` isolated vertices 0..n-1.
  explicit Graph(std::size_t n = 0);

  /// Bulk constructor: `edges` must be sorted ascending, unique, with
  /// u < v for every entry. Builds the CSR form directly (the result is
  /// already finalized) — no per-edge insertion churn.
  static Graph from_sorted_edges(
      std::size_t n, std::span<const std::pair<Vertex, Vertex>> edges);

  /// Adds an undirected edge; self-loops are rejected, duplicates ignored.
  /// Drops back to the mutable build form if the graph was finalized.
  void add_edge(Vertex u, Vertex v);

  /// Packs the adjacency into CSR (and, for graphs up to
  /// kAdjacencyBitsetMaxVertices vertices, the adjacency bitset).
  /// Idempotent. Call before sharing the graph read-only across threads or
  /// entering query-heavy algorithms.
  void finalize();
  bool finalized() const { return csr_valid_; }

  bool has_edge(Vertex u, Vertex v) const;

  /// Sorted neighbor list of `v`.
  std::span<const Vertex> neighbors(Vertex v) const;

  /// Index of the first neighbor of `v` in the flat CSR neighbor array —
  /// the key that lets callers keep arrays parallel to the neighbor list
  /// (the conflict graph stores edge weights this way). Requires
  /// finalized().
  std::size_t neighbor_base(Vertex v) const;

  /// Total length of the flat CSR neighbor array (2 * edge_count()).
  /// Requires finalized().
  std::size_t neighbor_array_size() const { return neighbors_.size(); }

  /// 64-bit words per adjacency-bitset row ((n + 63) / 64), or 0 when the
  /// bitset is absent (graph not finalized, empty, or larger than
  /// kAdjacencyBitsetMaxVertices). Nonzero means adjacency_row() is usable.
  std::size_t adjacency_words_per_row() const { return words_per_row_; }

  /// Row `v` of the adjacency bitset: bit `w` of word `w / 64` is set iff
  /// (v, w) is an edge. Empty span when the bitset is absent. Lets callers
  /// intersect a neighborhood against their own vertex bitsets word by word
  /// (the speculative coloring tier's conflict detection).
  std::span<const std::uint64_t> adjacency_row(Vertex v) const {
    if (words_per_row_ == 0) return {};
    return {adj_bits_.data() + v * words_per_row_, words_per_row_};
  }

  std::size_t degree(Vertex v) const {
    return csr_valid_ ? offsets_[v + 1] - offsets_[v] : adj_[v].size();
  }
  std::size_t vertex_count() const { return n_; }
  std::size_t edge_count() const { return edge_count_; }

  /// True iff every pair of vertices in `set` is adjacent. The empty set and
  /// singletons are cliques.
  bool is_clique(std::span<const Vertex> set) const;

  /// Subgraph induced by `keep` (need not be sorted). The i-th vertex of the
  /// result corresponds to keep[i]; `keep` itself is the back-mapping. The
  /// result is finalized iff this graph is.
  Graph induced(std::span<const Vertex> keep) const;

  /// Connected components as lists of vertices (each sorted ascending).
  std::vector<std::vector<Vertex>> components() const;

  /// Connected component containing `start`, restricted to vertices for
  /// which `alive[v]` is true (alive.size() == vertex_count()). `start` must
  /// be alive. Result is sorted ascending.
  std::vector<Vertex> component_of(Vertex start,
                                   const std::vector<bool>& alive) const;

  // ---- Constructors for common shapes (used by tests and benches) ----
  static Graph complete(std::size_t n);
  static Graph cycle(std::size_t n);
  static Graph path(std::size_t n);
  /// Erdos-Renyi G(n, p) with a deterministic generator.
  static Graph random(std::size_t n, double p, support::SplitMix64& rng);

  /// Multi-line human-readable dump (vertex: neighbor list).
  std::string to_string() const;

  /// Largest vertex count for which finalize() also builds the O(n^2)-bit
  /// adjacency bitset (8 MiB at the limit). Bigger graphs answer has_edge
  /// by binary search over the CSR row.
  static constexpr std::size_t kAdjacencyBitsetMaxVertices = 8192;

 private:
  void check_vertex(Vertex v) const;
  /// Rebuilds the mutable adjacency from CSR and drops the CSR (the inverse
  /// of finalize(); used by add_edge on a finalized graph).
  void definalize();

  std::size_t n_ = 0;
  std::size_t edge_count_ = 0;

  // Build form (live iff !csr_valid_).
  std::vector<std::vector<Vertex>> adj_;

  // CSR form (live iff csr_valid_).
  bool csr_valid_ = false;
  std::vector<std::uint32_t> offsets_;  // n_ + 1 entries
  std::vector<Vertex> neighbors_;       // flat, rows sorted ascending
  // Adjacency bitset, row-major, words_per_row_ 64-bit words per vertex;
  // empty when n_ > kAdjacencyBitsetMaxVertices.
  std::vector<std::uint64_t> adj_bits_;
  std::size_t words_per_row_ = 0;
};

}  // namespace parmem::graph
