// Undirected simple graph.
//
// This is the substrate for the paper's access-conflict graphs (§2): nodes
// are data values, edges join values that appear as operands of the same
// long instruction. It is deliberately simple — dense adjacency queries on
// graphs of at most a few thousand vertices — and keeps neighbor lists
// sorted so algorithms get deterministic iteration order.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/rng.h"

namespace parmem::graph {

using Vertex = std::uint32_t;

class Graph {
 public:
  /// Creates a graph with `n` isolated vertices 0..n-1.
  explicit Graph(std::size_t n = 0);

  /// Adds an undirected edge; self-loops are rejected, duplicates ignored.
  void add_edge(Vertex u, Vertex v);

  bool has_edge(Vertex u, Vertex v) const;

  /// Sorted neighbor list of `v`.
  std::span<const Vertex> neighbors(Vertex v) const;

  std::size_t degree(Vertex v) const { return adj_[v].size(); }
  std::size_t vertex_count() const { return adj_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// True iff every pair of vertices in `set` is adjacent. The empty set and
  /// singletons are cliques.
  bool is_clique(std::span<const Vertex> set) const;

  /// Subgraph induced by `keep` (need not be sorted). The i-th vertex of the
  /// result corresponds to keep[i]; `keep` itself is the back-mapping.
  Graph induced(std::span<const Vertex> keep) const;

  /// Connected components as lists of vertices (each sorted ascending).
  std::vector<std::vector<Vertex>> components() const;

  /// Connected component containing `start`, restricted to vertices for
  /// which `alive[v]` is true (alive.size() == vertex_count()). `start` must
  /// be alive. Result is sorted ascending.
  std::vector<Vertex> component_of(Vertex start,
                                   const std::vector<bool>& alive) const;

  // ---- Constructors for common shapes (used by tests and benches) ----
  static Graph complete(std::size_t n);
  static Graph cycle(std::size_t n);
  static Graph path(std::size_t n);
  /// Erdos-Renyi G(n, p) with a deterministic generator.
  static Graph random(std::size_t n, double p, support::SplitMix64& rng);

  /// Multi-line human-readable dump (vertex: neighbor list).
  std::string to_string() const;

 private:
  void check_vertex(Vertex v) const;

  std::vector<std::vector<Vertex>> adj_;
  std::size_t edge_count_ = 0;
};

}  // namespace parmem::graph
