#include "graph/dot.h"

#include <algorithm>
#include <sstream>

namespace parmem::graph {
namespace {

// A small qualitative palette (colorblind-safe-ish).
const char* kPalette[] = {"#4477aa", "#ee6677", "#228833", "#ccbb44",
                          "#66ccee", "#aa3377", "#bbbbbb", "#44aa99"};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

std::string vertex_label(const DotOptions& o, Vertex v) {
  return o.label ? o.label(v) : "v" + std::to_string(v);
}

void emit_vertex(std::ostringstream& os, const DotOptions& o, Vertex v,
                 const std::string& node_name) {
  os << "  " << node_name << " [label=\"" << vertex_label(o, v) << '"';
  if (o.coloring != nullptr && v < o.coloring->size()) {
    const std::int32_t c = (*o.coloring)[v];
    if (c >= 0) {
      os << ", style=filled, fillcolor=\""
         << kPalette[static_cast<std::size_t>(c) % kPaletteSize] << '"';
    } else {
      os << ", style=dashed";
    }
  }
  os << "];\n";
}

}  // namespace

std::string to_dot(const Graph& g, const DotOptions& options) {
  std::ostringstream os;
  os << "graph " << options.graph_name << " {\n"
     << "  node [shape=circle, fontsize=11];\n";
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    emit_vertex(os, options, v, "n" + std::to_string(v));
  }
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    for (const Vertex w : g.neighbors(v)) {
      if (w < v) continue;
      os << "  n" << v << " -- n" << w;
      if (options.edge_label) {
        os << " [label=\"" << options.edge_label(v, w) << "\"]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string atoms_to_dot(const Graph& g, const std::vector<Atom>& atoms,
                         const DotOptions& options) {
  std::ostringstream os;
  os << "graph " << options.graph_name << "_atoms {\n"
     << "  node [shape=circle, fontsize=11];\n";
  for (std::size_t a = 0; a < atoms.size(); ++a) {
    os << "  subgraph cluster_atom" << a << " {\n"
       << "    label=\"atom " << a << "\";\n";
    const auto name = [&](Vertex v) {
      return "a" + std::to_string(a) + "_n" + std::to_string(v);
    };
    for (const Vertex v : atoms[a].vertices) {
      const bool is_sep =
          std::binary_search(atoms[a].separator.begin(),
                             atoms[a].separator.end(), v);
      os << "  ";
      emit_vertex(os, options, v, name(v));
      if (is_sep) {
        // Mark separator membership with a double border.
        os << "    " << name(v) << " [peripheries=2];\n";
      }
    }
    for (const Vertex v : atoms[a].vertices) {
      for (const Vertex w : g.neighbors(v)) {
        if (w < v) continue;
        if (!std::binary_search(atoms[a].vertices.begin(),
                                atoms[a].vertices.end(), w)) {
          continue;
        }
        os << "    " << name(v) << " -- " << name(w) << ";\n";
      }
    }
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace parmem::graph
