#include "graph/atoms.h"

#include <algorithm>

#include "graph/mcsm.h"
#include "support/diagnostics.h"

namespace parmem::graph {

std::vector<Atom> decompose_by_clique_separators(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<Atom> atoms;
  if (n == 0) return atoms;

  const Triangulation tri = mcs_m(g);

  // Adjacency of H = G + F, as sorted neighbor lists.
  std::vector<std::vector<Vertex>> h_adj(n);
  for (Vertex v = 0; v < n; ++v) {
    const auto nb = g.neighbors(v);
    h_adj[v].assign(nb.begin(), nb.end());
  }
  for (const auto& [u, v] : tri.fill) {
    h_adj[u].insert(std::lower_bound(h_adj[u].begin(), h_adj[u].end(), v), v);
    h_adj[v].insert(std::lower_bound(h_adj[v].begin(), h_adj[v].end(), u), u);
  }

  std::vector<std::size_t> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[tri.order[i]] = i;

  std::vector<bool> alive(n, true);
  std::size_t alive_count = n;

  for (std::size_t i = 0; i < n; ++i) {
    const Vertex x = tri.order[i];
    if (!alive[x]) continue;  // already split off inside some component

    // S = later neighbors of x in H that are still alive.
    std::vector<Vertex> sep;
    for (const Vertex w : h_adj[x]) {
      if (pos[w] > i && alive[w]) sep.push_back(w);
    }
    if (sep.empty()) continue;              // x isolated in the remainder
    if (!g.is_clique(sep)) continue;        // not a clique separator of G

    // Component of x with S removed.
    std::vector<bool> mask = alive;
    for (const Vertex s : sep) mask[s] = false;
    std::vector<Vertex> comp = g.component_of(x, mask);

    // S must actually separate: the component plus S must not be everything
    // still alive (otherwise this split would swallow the whole remainder).
    if (comp.size() + sep.size() >= alive_count) continue;

    // S must be a *minimal* separator between C and the rest: every
    // separator vertex needs a neighbor on both sides. Splitting on a
    // non-minimal clique separator would emit non-maximal atoms (e.g. a
    // sub-clique of a maximal clique in a chordal graph).
    std::vector<bool> in_comp(n, false);
    for (const Vertex c : comp) in_comp[c] = true;
    std::vector<bool> in_sep(n, false);
    for (const Vertex s : sep) in_sep[s] = true;
    bool minimal = true;
    for (const Vertex s : sep) {
      bool to_comp = false, to_rest = false;
      for (const Vertex w : g.neighbors(s)) {
        if (!alive[w]) continue;
        if (in_comp[w]) to_comp = true;
        else if (!in_sep[w]) to_rest = true;
      }
      if (!to_comp || !to_rest) {
        minimal = false;
        break;
      }
    }
    if (!minimal) continue;

    Atom atom;
    atom.vertices = comp;
    atom.vertices.insert(atom.vertices.end(), sep.begin(), sep.end());
    std::sort(atom.vertices.begin(), atom.vertices.end());
    atom.separator = sep;  // already sorted (h_adj is sorted)
    atoms.push_back(std::move(atom));

    for (const Vertex c : comp) {
      alive[c] = false;
      --alive_count;
    }
  }

  // Whatever remains forms the final atoms — one per connected component of
  // the remainder, each with an empty separator.
  std::vector<bool> emitted(n, false);
  for (Vertex v = 0; v < n; ++v) {
    if (!alive[v] || emitted[v]) continue;
    Atom last;
    last.vertices = g.component_of(v, alive);
    for (const Vertex u : last.vertices) emitted[u] = true;
    atoms.push_back(std::move(last));
  }
  PARMEM_CHECK(!atoms.empty(), "decomposition must produce at least one atom");
  return atoms;
}

}  // namespace parmem::graph
