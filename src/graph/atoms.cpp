#include "graph/atoms.h"

#include <algorithm>

#include "graph/mcsm.h"
#include "support/diagnostics.h"

namespace parmem::graph {

std::vector<Atom> decompose_by_clique_separators(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<Atom> atoms;
  if (n == 0) return atoms;

  const Triangulation tri = mcs_m(g);

  // Adjacency of H = G + F, as sorted neighbor lists: gather the fill
  // edges per vertex, then one sorted merge per row (tri.fill is sorted, so
  // per-vertex fill lists come out sorted) instead of per-edge insertion.
  std::vector<std::vector<Vertex>> h_adj(n);
  std::vector<std::vector<Vertex>> fill_of(n);
  for (const auto& [u, v] : tri.fill) {
    fill_of[u].push_back(v);
    fill_of[v].push_back(u);
  }
  for (Vertex v = 0; v < n; ++v) {
    const auto nb = g.neighbors(v);
    std::sort(fill_of[v].begin(), fill_of[v].end());
    h_adj[v].resize(nb.size() + fill_of[v].size());
    std::merge(nb.begin(), nb.end(), fill_of[v].begin(), fill_of[v].end(),
               h_adj[v].begin());
  }

  std::vector<std::size_t> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[tri.order[i]] = i;

  std::vector<bool> alive(n, true);
  std::size_t alive_count = n;

  // Scratch reused across candidate splits (each split used to allocate
  // its own O(n) masks — O(atoms × V) churn on atom-rich graphs).
  std::vector<Vertex> sep;
  std::vector<bool> mask;
  std::vector<bool> in_comp(n, false);
  std::vector<bool> in_sep(n, false);

  for (std::size_t i = 0; i < n; ++i) {
    const Vertex x = tri.order[i];
    if (!alive[x]) continue;  // already split off inside some component

    // S = later neighbors of x in H that are still alive.
    sep.clear();
    for (const Vertex w : h_adj[x]) {
      if (pos[w] > i && alive[w]) sep.push_back(w);
    }
    if (sep.empty()) continue;              // x isolated in the remainder
    if (!g.is_clique(sep)) continue;        // not a clique separator of G

    // Component of x with S removed.
    mask = alive;
    for (const Vertex s : sep) mask[s] = false;
    std::vector<Vertex> comp = g.component_of(x, mask);

    // S must actually separate: the component plus S must not be everything
    // still alive (otherwise this split would swallow the whole remainder).
    if (comp.size() + sep.size() >= alive_count) continue;

    // S must be a *minimal* separator between C and the rest: every
    // separator vertex needs a neighbor on both sides. Splitting on a
    // non-minimal clique separator would emit non-maximal atoms (e.g. a
    // sub-clique of a maximal clique in a chordal graph).
    for (const Vertex c : comp) in_comp[c] = true;
    for (const Vertex s : sep) in_sep[s] = true;
    bool minimal = true;
    for (const Vertex s : sep) {
      bool to_comp = false, to_rest = false;
      for (const Vertex w : g.neighbors(s)) {
        if (!alive[w]) continue;
        if (in_comp[w]) to_comp = true;
        else if (!in_sep[w]) to_rest = true;
      }
      if (!to_comp || !to_rest) {
        minimal = false;
        break;
      }
    }
    for (const Vertex c : comp) in_comp[c] = false;
    for (const Vertex s : sep) in_sep[s] = false;
    if (!minimal) continue;

    Atom atom;
    atom.vertices = comp;
    atom.vertices.insert(atom.vertices.end(), sep.begin(), sep.end());
    std::sort(atom.vertices.begin(), atom.vertices.end());
    atom.separator = sep;  // already sorted (h_adj is sorted)
    atoms.push_back(std::move(atom));

    for (const Vertex c : comp) {
      alive[c] = false;
      --alive_count;
    }
  }

  // Whatever remains forms the final atoms — one per connected component of
  // the remainder, each with an empty separator.
  std::vector<bool> emitted(n, false);
  for (Vertex v = 0; v < n; ++v) {
    if (!alive[v] || emitted[v]) continue;
    Atom last;
    last.vertices = g.component_of(v, alive);
    for (const Vertex u : last.vertices) emitted[u] = true;
    atoms.push_back(std::move(last));
  }
  PARMEM_CHECK(!atoms.empty(), "decomposition must produce at least one atom");
  return atoms;
}

}  // namespace parmem::graph
