// MCS-M: minimal triangulation by maximum cardinality search.
//
// The clique-separator decomposition of §2.1 (Tarjan, Discrete Math. 1985)
// needs a *minimal elimination ordering* of the graph together with its
// fill-in. Tarjan's paper uses LEX-M (Rose/Tarjan/Lueker 1976); we implement
// the equivalent and simpler MCS-M (Berry, Blair, Heggernes, Peyton,
// Algorithmica 2004), which also produces a minimal triangulation and is the
// standard modern choice. Either ordering is valid input to the atom
// decomposition.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace parmem::graph {

/// Result of MCS-M on a graph G.
struct Triangulation {
  /// Minimal elimination ordering: order[0] is eliminated first.
  /// (MCS-M numbers vertices n..1; order[i] is the vertex numbered i+1.)
  std::vector<Vertex> order;
  /// Fill edges F; H = G + F is a minimal triangulation of G.
  std::vector<std::pair<Vertex, Vertex>> fill;
};

/// Runs MCS-M. O(n * m log n) with the minimax-path search implemented as a
/// Dijkstra variant; conflict graphs in this library are small enough that
/// this is never the bottleneck.
Triangulation mcs_m(const Graph& g);

/// True iff `order` is a perfect elimination ordering of `g` (i.e. g is
/// chordal and order eliminates it without fill). Used by tests: MCS-M's
/// order must be perfect on H = G + F.
bool is_perfect_elimination_ordering(const Graph& g,
                                     const std::vector<Vertex>& order);

}  // namespace parmem::graph
