// Graphviz (DOT) export for graphs, colorings, and atom decompositions —
// the debugging view for conflict-graph work.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/atoms.h"
#include "graph/coloring.h"
#include "graph/graph.h"

namespace parmem::graph {

struct DotOptions {
  std::string graph_name = "G";
  /// Vertex labels; empty == numeric ids.
  std::function<std::string(Vertex)> label;
  /// Optional coloring: colored vertices are filled from a palette,
  /// kUncolored vertices drawn dashed (the removed / V_unassigned look).
  const Coloring* coloring = nullptr;
  /// Optional edge annotation (e.g. the conflict count).
  std::function<std::string(Vertex, Vertex)> edge_label;
};

/// Renders an undirected graph in DOT syntax.
std::string to_dot(const Graph& g, const DotOptions& options = {});

/// Renders the atom decomposition as DOT clusters (one subgraph per atom;
/// separator vertices appear in every atom that contains them, suffixed
/// with the atom index to keep node names unique).
std::string atoms_to_dot(const Graph& g, const std::vector<Atom>& atoms,
                         const DotOptions& options = {});

}  // namespace parmem::graph
