#include "graph/graph.h"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.h"

namespace parmem::graph {

Graph::Graph(std::size_t n) : adj_(n) {}

void Graph::check_vertex(Vertex v) const {
  PARMEM_CHECK(v < adj_.size(), "vertex id out of range");
}

void Graph::add_edge(Vertex u, Vertex v) {
  check_vertex(u);
  check_vertex(v);
  PARMEM_CHECK(u != v, "self-loops are not allowed");
  auto& nu = adj_[u];
  const auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it != nu.end() && *it == v) return;  // duplicate
  nu.insert(it, v);
  auto& nv = adj_[v];
  nv.insert(std::lower_bound(nv.begin(), nv.end(), u), u);
  ++edge_count_;
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  check_vertex(u);
  check_vertex(v);
  if (u == v) return false;
  // Probe the smaller adjacency list.
  const auto& n = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const Vertex target = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::binary_search(n.begin(), n.end(), target);
}

std::span<const Vertex> Graph::neighbors(Vertex v) const {
  check_vertex(v);
  return adj_[v];
}

bool Graph::is_clique(std::span<const Vertex> set) const {
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      if (!has_edge(set[i], set[j])) return false;
    }
  }
  return true;
}

Graph Graph::induced(std::span<const Vertex> keep) const {
  std::vector<std::int64_t> to_new(adj_.size(), -1);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    check_vertex(keep[i]);
    PARMEM_CHECK(to_new[keep[i]] < 0, "duplicate vertex in induced() set");
    to_new[keep[i]] = static_cast<std::int64_t>(i);
  }
  Graph g(keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    for (const Vertex w : adj_[keep[i]]) {
      const std::int64_t j = to_new[w];
      if (j >= 0 && static_cast<std::size_t>(j) > i) {
        g.add_edge(static_cast<Vertex>(i), static_cast<Vertex>(j));
      }
    }
  }
  return g;
}

std::vector<std::vector<Vertex>> Graph::components() const {
  std::vector<bool> alive(adj_.size(), true);
  std::vector<bool> seen(adj_.size(), false);
  std::vector<std::vector<Vertex>> out;
  for (Vertex v = 0; v < adj_.size(); ++v) {
    if (seen[v]) continue;
    auto comp = component_of(v, alive);
    for (const Vertex u : comp) seen[u] = true;
    out.push_back(std::move(comp));
  }
  return out;
}

std::vector<Vertex> Graph::component_of(Vertex start,
                                        const std::vector<bool>& alive) const {
  check_vertex(start);
  PARMEM_CHECK(alive.size() == adj_.size(),
               "alive mask size must match vertex count");
  PARMEM_CHECK(alive[start], "component_of start vertex must be alive");
  std::vector<Vertex> stack{start};
  std::vector<bool> seen(adj_.size(), false);
  seen[start] = true;
  std::vector<Vertex> comp;
  while (!stack.empty()) {
    const Vertex v = stack.back();
    stack.pop_back();
    comp.push_back(v);
    for (const Vertex w : adj_[v]) {
      if (alive[w] && !seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  std::sort(comp.begin(), comp.end());
  return comp;
}

Graph Graph::complete(std::size_t n) {
  Graph g(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph Graph::cycle(std::size_t n) {
  PARMEM_CHECK(n >= 3, "cycle needs at least 3 vertices");
  Graph g(n);
  for (Vertex v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<Vertex>((v + 1) % n));
  }
  return g;
}

Graph Graph::path(std::size_t n) {
  Graph g(n);
  for (Vertex v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph Graph::random(std::size_t n, double p, support::SplitMix64& rng) {
  PARMEM_CHECK(p >= 0.0 && p <= 1.0, "edge probability must be in [0,1]");
  Graph g(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (rng.uniform() < p) g.add_edge(u, v);
    }
  }
  return g;
}

std::string Graph::to_string() const {
  std::ostringstream os;
  for (Vertex v = 0; v < adj_.size(); ++v) {
    os << v << ':';
    for (const Vertex w : adj_[v]) os << ' ' << w;
    os << '\n';
  }
  return os.str();
}

}  // namespace parmem::graph
