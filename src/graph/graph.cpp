#include "graph/graph.h"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.h"

namespace parmem::graph {

Graph::Graph(std::size_t n) : n_(n), adj_(n) {}

void Graph::check_vertex(Vertex v) const {
  PARMEM_CHECK(v < n_, "vertex id out of range");
}

Graph Graph::from_sorted_edges(
    std::size_t n, std::span<const std::pair<Vertex, Vertex>> edges) {
  Graph g(n);
  g.adj_.clear();
  g.adj_.shrink_to_fit();
  g.edge_count_ = edges.size();

  // Degree count, then prefix sums, then a second placement pass. Each
  // row receives first its smaller neighbors (edges where v is the max
  // endpoint, in ascending u order) and then its larger ones, so rows come
  // out sorted without any per-row sort.
  std::vector<std::uint32_t> deg(n, 0);
  for (const auto& [u, v] : edges) {
    PARMEM_CHECK(u < v && v < n, "from_sorted_edges: bad edge");
    ++deg[u];
    ++deg[v];
  }
  g.offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + deg[v];
  g.neighbors_.resize(g.offsets_[n]);
  std::vector<std::uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) g.neighbors_[cursor[v]++] = u;
  for (const auto& [u, v] : edges) g.neighbors_[cursor[u]++] = v;
  for (std::size_t v = 0; v < n; ++v) {
    PARMEM_CHECK(std::is_sorted(g.neighbors_.begin() + g.offsets_[v],
                                g.neighbors_.begin() + g.offsets_[v + 1]) &&
                     std::adjacent_find(g.neighbors_.begin() + g.offsets_[v],
                                        g.neighbors_.begin() +
                                            g.offsets_[v + 1]) ==
                         g.neighbors_.begin() + g.offsets_[v + 1],
                 "from_sorted_edges: edges not sorted unique");
  }

  if (n <= kAdjacencyBitsetMaxVertices && n > 0) {
    g.words_per_row_ = (n + 63) / 64;
    g.adj_bits_.assign(n * g.words_per_row_, 0);
    for (const auto& [u, v] : edges) {
      g.adj_bits_[u * g.words_per_row_ + v / 64] |= 1ULL << (v % 64);
      g.adj_bits_[v * g.words_per_row_ + u / 64] |= 1ULL << (u % 64);
    }
  }
  g.csr_valid_ = true;
  return g;
}

void Graph::finalize() {
  if (csr_valid_) return;
  offsets_.assign(n_ + 1, 0);
  for (std::size_t v = 0; v < n_; ++v) {
    offsets_[v + 1] = offsets_[v] + static_cast<std::uint32_t>(adj_[v].size());
  }
  neighbors_.resize(offsets_[n_]);
  for (std::size_t v = 0; v < n_; ++v) {
    std::copy(adj_[v].begin(), adj_[v].end(), neighbors_.begin() + offsets_[v]);
  }
  if (n_ <= kAdjacencyBitsetMaxVertices && n_ > 0) {
    words_per_row_ = (n_ + 63) / 64;
    adj_bits_.assign(n_ * words_per_row_, 0);
    for (Vertex v = 0; v < n_; ++v) {
      for (const Vertex w : adj_[v]) {
        adj_bits_[v * words_per_row_ + w / 64] |= 1ULL << (w % 64);
      }
    }
  }
  adj_.clear();
  adj_.shrink_to_fit();
  csr_valid_ = true;
}

void Graph::definalize() {
  if (!csr_valid_) return;
  adj_.assign(n_, {});
  for (Vertex v = 0; v < n_; ++v) {
    const auto row = neighbors(v);
    adj_[v].assign(row.begin(), row.end());
  }
  offsets_.clear();
  neighbors_.clear();
  adj_bits_.clear();
  words_per_row_ = 0;
  csr_valid_ = false;
}

void Graph::add_edge(Vertex u, Vertex v) {
  check_vertex(u);
  check_vertex(v);
  PARMEM_CHECK(u != v, "self-loops are not allowed");
  definalize();
  auto& nu = adj_[u];
  const auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it != nu.end() && *it == v) return;  // duplicate
  nu.insert(it, v);
  auto& nv = adj_[v];
  nv.insert(std::lower_bound(nv.begin(), nv.end(), u), u);
  ++edge_count_;
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  check_vertex(u);
  check_vertex(v);
  if (u == v) return false;
  if (!adj_bits_.empty()) {
    return (adj_bits_[u * words_per_row_ + v / 64] >> (v % 64)) & 1;
  }
  // Probe the smaller adjacency list.
  const auto nu = neighbors(u);
  const auto nv = neighbors(v);
  const auto& n = nu.size() <= nv.size() ? nu : nv;
  const Vertex target = nu.size() <= nv.size() ? v : u;
  return std::binary_search(n.begin(), n.end(), target);
}

std::span<const Vertex> Graph::neighbors(Vertex v) const {
  check_vertex(v);
  if (csr_valid_) {
    return {neighbors_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }
  return adj_[v];
}

std::size_t Graph::neighbor_base(Vertex v) const {
  check_vertex(v);
  PARMEM_CHECK(csr_valid_, "neighbor_base requires a finalized graph");
  return offsets_[v];
}

bool Graph::is_clique(std::span<const Vertex> set) const {
  if (!adj_bits_.empty()) {
    for (const Vertex u : set) {
      check_vertex(u);
      const std::uint64_t* row = adj_bits_.data() + u * words_per_row_;
      for (const Vertex v : set) {
        if (v != u && !((row[v / 64] >> (v % 64)) & 1)) return false;
      }
    }
    return true;
  }
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      if (!has_edge(set[i], set[j])) return false;
    }
  }
  return true;
}

Graph Graph::induced(std::span<const Vertex> keep) const {
  std::vector<std::int64_t> to_new(n_, -1);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    check_vertex(keep[i]);
    PARMEM_CHECK(to_new[keep[i]] < 0, "duplicate vertex in induced() set");
    to_new[keep[i]] = static_cast<std::int64_t>(i);
  }
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::size_t i = 0; i < keep.size(); ++i) {
    for (const Vertex w : neighbors(keep[i])) {
      const std::int64_t j = to_new[w];
      if (j >= 0 && static_cast<std::size_t>(j) > i) {
        edges.emplace_back(static_cast<Vertex>(i), static_cast<Vertex>(j));
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  Graph g = from_sorted_edges(keep.size(), edges);
  if (!csr_valid_) g.definalize();
  return g;
}

std::vector<std::vector<Vertex>> Graph::components() const {
  std::vector<bool> alive(n_, true);
  std::vector<bool> seen(n_, false);
  std::vector<std::vector<Vertex>> out;
  for (Vertex v = 0; v < n_; ++v) {
    if (seen[v]) continue;
    auto comp = component_of(v, alive);
    for (const Vertex u : comp) seen[u] = true;
    out.push_back(std::move(comp));
  }
  return out;
}

std::vector<Vertex> Graph::component_of(Vertex start,
                                        const std::vector<bool>& alive) const {
  check_vertex(start);
  PARMEM_CHECK(alive.size() == n_, "alive mask size must match vertex count");
  PARMEM_CHECK(alive[start], "component_of start vertex must be alive");
  std::vector<Vertex> stack{start};
  std::vector<bool> seen(n_, false);
  seen[start] = true;
  std::vector<Vertex> comp;
  while (!stack.empty()) {
    const Vertex v = stack.back();
    stack.pop_back();
    comp.push_back(v);
    for (const Vertex w : neighbors(v)) {
      if (alive[w] && !seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  std::sort(comp.begin(), comp.end());
  return comp;
}

Graph Graph::complete(std::size_t n) {
  Graph g(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph Graph::cycle(std::size_t n) {
  PARMEM_CHECK(n >= 3, "cycle needs at least 3 vertices");
  Graph g(n);
  for (Vertex v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<Vertex>((v + 1) % n));
  }
  return g;
}

Graph Graph::path(std::size_t n) {
  Graph g(n);
  for (Vertex v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph Graph::random(std::size_t n, double p, support::SplitMix64& rng) {
  PARMEM_CHECK(p >= 0.0 && p <= 1.0, "edge probability must be in [0,1]");
  Graph g(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (rng.uniform() < p) g.add_edge(u, v);
    }
  }
  return g;
}

std::string Graph::to_string() const {
  std::ostringstream os;
  for (Vertex v = 0; v < n_; ++v) {
    os << v << ':';
    for (const Vertex w : neighbors(v)) os << ' ' << w;
    os << '\n';
  }
  return os.str();
}

}  // namespace parmem::graph
