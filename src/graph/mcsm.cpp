#include "graph/mcsm.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "support/diagnostics.h"

namespace parmem::graph {
namespace {

// Minimax reachability for one MCS-M step.
//
// Given the chosen vertex x, find every unnumbered y such that some path
// x, x1, .., xk, y exists with all xi unnumbered and w(xi) < w(y). Define
// g(y) = min over paths of the maximum intermediate weight (-1 for a direct
// edge); then y qualifies iff g(y) < w(y). g() is computed with a Dijkstra
// scan keyed on g.
std::vector<Vertex> reachable_through_lower_weights(
    const Graph& graph, Vertex x, const std::vector<bool>& numbered,
    const std::vector<std::int64_t>& weight) {
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> best(graph.vertex_count(), kInf);
  using Item = std::pair<std::int64_t, Vertex>;  // (g, vertex), min-heap
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;

  for (const Vertex y : graph.neighbors(x)) {
    if (numbered[y]) continue;
    best[y] = -1;  // direct edge: no intermediates
    heap.emplace(-1, y);
  }

  std::vector<Vertex> out;
  while (!heap.empty()) {
    const auto [g, v] = heap.top();
    heap.pop();
    if (g != best[v]) continue;  // stale entry
    if (g < weight[v]) out.push_back(v);
    // Extending any path through v makes v an intermediate.
    const std::int64_t via = std::max(g, weight[v]);
    for (const Vertex w : graph.neighbors(v)) {
      if (numbered[w] || w == x) continue;
      if (via < best[w]) {
        best[w] = via;
        heap.emplace(via, w);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Triangulation mcs_m(const Graph& g) {
  const std::size_t n = g.vertex_count();
  Triangulation result;
  result.order.assign(n, 0);
  std::vector<std::int64_t> weight(n, 0);
  std::vector<bool> numbered(n, false);

  for (std::size_t step = n; step > 0; --step) {
    // Pick the unnumbered vertex with maximum weight (lowest id on ties,
    // for determinism).
    Vertex x = 0;
    std::int64_t best = -1;
    for (Vertex v = 0; v < n; ++v) {
      if (!numbered[v] && weight[v] > best) {
        best = weight[v];
        x = v;
      }
    }
    PARMEM_CHECK(best >= 0, "no unnumbered vertex left");

    const auto reached = reachable_through_lower_weights(g, x, numbered, weight);
    for (const Vertex y : reached) {
      weight[y] += 1;
      if (!g.has_edge(x, y)) {
        result.fill.emplace_back(std::min(x, y), std::max(x, y));
      }
    }
    numbered[x] = true;
    result.order[step - 1] = x;  // numbered `step`; eliminated at index step-1
  }

  std::sort(result.fill.begin(), result.fill.end());
  result.fill.erase(std::unique(result.fill.begin(), result.fill.end()),
                    result.fill.end());
  return result;
}

bool is_perfect_elimination_ordering(const Graph& g,
                                     const std::vector<Vertex>& order) {
  PARMEM_CHECK(order.size() == g.vertex_count(),
               "ordering must cover all vertices");
  std::vector<std::size_t> pos(g.vertex_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Vertex v = order[i];
    // Later neighbors of v must form a clique.
    std::vector<Vertex> later;
    for (const Vertex w : g.neighbors(v)) {
      if (pos[w] > i) later.push_back(w);
    }
    if (!g.is_clique(later)) return false;
  }
  return true;
}

}  // namespace parmem::graph
