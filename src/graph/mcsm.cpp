#include "graph/mcsm.h"

#include <algorithm>
#include <limits>

#include "support/diagnostics.h"

namespace parmem::graph {
namespace {

// Scratch shared by every MCS-M step. The per-step Dijkstra used to
// allocate and zero an O(n) distance array 4096 times over a 4096-vertex
// graph — 100+ MB of pure memset traffic. Instead the distance state is
// epoch-stamped (valid iff its stored epoch matches the current one) and
// all queue buffers are reused.
//
// The inner loop of the scan executes once per (step, live edge) pair —
// Theta(n * m) visits over a full run, hundreds of millions on the larger
// workloads — so the per-visit footprint is the whole game. Epoch and
// tentative minimax share one 64-bit word per vertex:
//
//   score[v] = (epoch << 32) | (0xFFFFFFFF - (best + 1))
//
// Newer epochs compare greater than stale ones and, within an epoch,
// smaller (better) minimax values compare greater — so "should this
// relaxation be taken?" is a single load and one unsigned compare, and
// writing the relaxed value is a single store.
//
// live_* is a mutable copy of the adjacency from which numbered vertices
// are removed as they are eliminated: each step's scan only walks the
// unnumbered remainder, cutting edge traffic by a third on average.
// Removal swap-deletes, so live rows are unsorted — harmless, because the
// final minimax values do not depend on visit order and the caller sorts
// the reachable set.
struct McsmScratch {
  std::vector<std::uint64_t> score;
  std::uint64_t epoch = 0;
  // Dial's bucket queue: buckets[g + 1] holds vertices whose tentative
  // minimax is g. Keys are bounded by the step's maximum weight (a few
  // dozen in practice), so every push/pop is O(1) instead of a binary
  // heap's O(log n). Every call drains and clears each bucket it touches,
  // so the buffers start empty.
  std::vector<std::vector<Vertex>> buckets;
  std::vector<Vertex> xrow;  // live neighbors of the step's chosen vertex

  std::vector<std::uint32_t> live_off;  // n + 1
  std::vector<Vertex> live_nbr;         // flat rows, mutable
  std::vector<std::uint32_t> live_deg;  // live prefix length of each row

  static std::uint64_t key(std::uint64_t epoch, std::int64_t best) {
    return (epoch << 32) |
           (0xFFFFFFFFu - static_cast<std::uint32_t>(best + 1));
  }

  explicit McsmScratch(const Graph& g) {
    const std::size_t n = g.vertex_count();
    score.assign(n, 0);
    epoch = 0;
    live_off.assign(n + 1, 0);
    live_deg.assign(n, 0);
    for (Vertex v = 0; v < n; ++v) {
      live_off[v + 1] = live_off[v] + static_cast<std::uint32_t>(g.degree(v));
      live_deg[v] = static_cast<std::uint32_t>(g.degree(v));
    }
    live_nbr.resize(live_off[n]);
    for (Vertex v = 0; v < n; ++v) {
      const auto nb = g.neighbors(v);
      std::copy(nb.begin(), nb.end(), live_nbr.begin() + live_off[v]);
    }
  }

  std::span<const Vertex> live(Vertex v) const {
    return {live_nbr.data() + live_off[v], live_deg[v]};
  }

  /// Removes `x` from every live neighbor's row (called once x is numbered).
  void remove(Vertex x) {
    for (const Vertex w : live(x)) {
      Vertex* row = live_nbr.data() + live_off[w];
      for (std::uint32_t i = 0; i < live_deg[w]; ++i) {
        if (row[i] == x) {
          row[i] = row[--live_deg[w]];
          break;
        }
      }
    }
    live_deg[x] = 0;
  }
};

// Minimax reachability for one MCS-M step.
//
// Given the chosen vertex x, find every unnumbered y such that some path
// x, x1, .., xk, y exists with all xi unnumbered and w(xi) < w(y). Define
// g(y) = min over paths of the maximum intermediate weight (-1 for a direct
// edge); then y qualifies iff g(y) < w(y). g() is computed with a Dijkstra
// scan keyed on g over the live (unnumbered) adjacency; the caller has
// already removed x itself from the live rows and passes x's former row in
// s.xrow, so the inner loop needs no self-exclusion test.
//
// Two properties make the scan cheap without changing its answer:
//
// Cutoff: x is the maximum-weight unnumbered vertex, so every candidate
// has w(y) <= w(x) and can only qualify through a path with minimax
// < w(x). Keys come out of the queue in non-decreasing order, so
// relaxations with via >= w(x) are never pushed — they could only ever
// produce non-qualifying minimax values. This is a pure search-space
// prune: the returned set (and hence MCS-M's order and fill) is exactly
// the unpruned algorithm's. While weights are flat (early steps) the scan
// is O(deg(x)) instead of a flood of the whole remaining graph.
//
// Bucket queue: the cutoff also bounds every key by w(x), a small integer,
// so Dial's algorithm applies — bucket b holds tentative minimax b - 1,
// buckets are drained in ascending order, and a vertex processed while
// draining its bucket can push into the same or a later bucket only
// (via = max(g, w(v)) >= g). Each push/pop is O(1) where a binary heap
// pays O(log n); the final minimax values — and therefore the sorted
// reached set — do not depend on the order equal keys are processed, so
// the queue discipline is free to change.
std::vector<Vertex> reachable_through_lower_weights(
    McsmScratch& s, const std::vector<std::int64_t>& weight,
    std::int64_t cutoff) {
  ++s.epoch;
  if (s.buckets.size() < static_cast<std::size_t>(cutoff) + 1) {
    s.buckets.resize(static_cast<std::size_t>(cutoff) + 1);
  }

  for (const Vertex y : s.xrow) {
    s.score[y] = McsmScratch::key(s.epoch, -1);  // direct: no intermediates
    s.buckets[0].push_back(y);
  }

  std::vector<Vertex> out;
  for (std::int64_t idx = 0; idx <= cutoff; ++idx) {
    auto& bucket = s.buckets[idx];
    const std::int64_t g = idx - 1;
    const std::uint64_t valid = McsmScratch::key(s.epoch, g);
    // Index loop: draining can append to this same bucket.
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const Vertex v = bucket[i];
      if (s.score[v] != valid) continue;  // stale, improved since pushed
      if (g < weight[v]) out.push_back(v);
      // Extending any path through v makes v an intermediate.
      const std::int64_t via = std::max(g, weight[v]);
      if (via >= cutoff) continue;  // extensions cannot qualify
      const std::uint64_t cand = McsmScratch::key(s.epoch, via);
      auto& next = s.buckets[via + 1];
      for (const Vertex w : s.live(v)) {
        if (cand > s.score[w]) {
          s.score[w] = cand;
          next.push_back(w);
        }
      }
    }
    bucket.clear();
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Triangulation mcs_m(const Graph& g) {
  const std::size_t n = g.vertex_count();
  Triangulation result;
  result.order.assign(n, 0);
  std::vector<std::int64_t> weight(n, 0);

  McsmScratch scratch(g);
  // Compact list of unnumbered vertices, order-insensitive (selection takes
  // the max weight with lowest id on ties, a pure reduction).
  std::vector<Vertex> unnumbered(n);
  for (Vertex v = 0; v < n; ++v) unnumbered[v] = v;
  std::vector<std::uint32_t> pos(n);
  for (Vertex v = 0; v < n; ++v) pos[v] = v;

  for (std::size_t step = n; step > 0; --step) {
    // Pick the unnumbered vertex with maximum weight (lowest id on ties,
    // for determinism).
    PARMEM_CHECK(!unnumbered.empty(), "no unnumbered vertex left");
    Vertex x = unnumbered[0];
    for (const Vertex v : unnumbered) {
      if (weight[v] > weight[x] || (weight[v] == weight[x] && v < x)) x = v;
    }

    // Number x up front: save its live row for seeding, then delete it
    // from the live adjacency so the scan never sees it as an intermediate.
    scratch.xrow.assign(scratch.live(x).begin(), scratch.live(x).end());
    scratch.remove(x);
    const auto reached =
        reachable_through_lower_weights(scratch, weight, weight[x]);
    for (const Vertex y : reached) {
      weight[y] += 1;
      if (!g.has_edge(x, y)) {
        result.fill.emplace_back(std::min(x, y), std::max(x, y));
      }
    }
    result.order[step - 1] = x;  // numbered `step`; eliminated at index step-1
    const std::uint32_t px = pos[x];
    unnumbered[px] = unnumbered.back();
    pos[unnumbered[px]] = px;
    unnumbered.pop_back();
  }

  std::sort(result.fill.begin(), result.fill.end());
  result.fill.erase(std::unique(result.fill.begin(), result.fill.end()),
                    result.fill.end());
  return result;
}

bool is_perfect_elimination_ordering(const Graph& g,
                                     const std::vector<Vertex>& order) {
  PARMEM_CHECK(order.size() == g.vertex_count(),
               "ordering must cover all vertices");
  std::vector<std::size_t> pos(g.vertex_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Vertex v = order[i];
    // Later neighbors of v must form a clique.
    std::vector<Vertex> later;
    for (const Vertex w : g.neighbors(v)) {
      if (pos[w] > i) later.push_back(w);
    }
    if (!g.is_clique(later)) return false;
  }
  return true;
}

}  // namespace parmem::graph
