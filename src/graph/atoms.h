// Decomposition by clique separators (Tarjan, Discrete Math. 55, 1985).
//
// §2.1 of the paper: "the graph is decomposed into atoms which are subgraphs
// that do not have clique separators. ... If each of the atoms in a graph is
// colored using k colors then the entire graph can be colored using k
// colors. Thus the coloring algorithm need only concern itself with coloring
// the atoms."
//
// Algorithm (Tarjan 1985 / Berry et al. 2010): compute a minimal elimination
// ordering and its triangulation H = G + F (here via MCS-M); scan vertices
// in elimination order; for vertex x let S = its later neighbors in H; if S
// is a clique in G and removing S disconnects x from the rest, emit the atom
// C ∪ S where C is x's component of G' - S, and delete C from the working
// graph G'. The final working graph is the last atom.
//
// Composition property used downstream: processing atoms in *reverse*
// generation order, the intersection of atom t with the union of atoms
// t+1..T is exactly its separator S_t — a clique — so a coloring of the
// later atoms can be extended atom by atom with the separator vertices
// pre-colored.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace parmem::graph {

/// One atom of the decomposition, in original vertex ids.
struct Atom {
  /// All vertices of the atom (sorted): component ∪ separator.
  std::vector<Vertex> vertices;
  /// The clique separator via which the atom was split off (sorted). Empty
  /// for the final atom. separator ⊆ vertices, and separator is exactly the
  /// intersection of this atom with all later-generated atoms.
  std::vector<Vertex> separator;
};

/// Decomposes `g` into atoms. Every vertex appears in at least one atom;
/// every edge appears in at least one atom; separators are cliques of `g`.
/// A connected graph with no clique separator yields a single atom.
std::vector<Atom> decompose_by_clique_separators(const Graph& g);

}  // namespace parmem::graph
