// Baseline graph colorings.
//
// The paper's own coloring heuristic (Fig. 4) lives in src/assign because it
// is driven by instruction conflict counts, not by graph structure alone.
// These baselines serve three roles: (1) oracles in tests (exact coloring on
// small graphs), (2) comparison points in the ablation benches, and (3) the
// "any algorithm will be successful in coloring such a node" argument of
// §2.1, which the first-fit baseline demonstrates.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace parmem::support {
class ThreadPool;
}

namespace parmem::graph {

/// A (possibly partial) coloring: color of vertex v, or kUncolored.
inline constexpr std::int32_t kUncolored = -1;
using Coloring = std::vector<std::int32_t>;

/// True iff no edge joins two vertices with the same non-negative color and
/// all colors are < k.
bool is_valid_coloring(const Graph& g, const Coloring& coloring,
                       std::size_t k);

/// Greedy first-fit in the given vertex order with k colors. Vertices that
/// cannot be colored are left kUncolored (they are the analogue of the
/// paper's V_unassigned).
Coloring first_fit(const Graph& g, std::size_t k,
                   const std::vector<Vertex>& order);

/// DSATUR (Brelaz 1979) with k colors; uncolorable vertices left kUncolored.
Coloring dsatur(const Graph& g, std::size_t k);

/// DSATUR run independently on every connected component, with the
/// components farmed out as tasks on `pool` (inline when pool is null or
/// has no workers). Components share no edges, so the merged coloring is
/// identical to plain per-component DSATUR for every worker count — the
/// graph-level analogue of the assignment pipeline's atom-parallel mode.
Coloring dsatur_components(const Graph& g, std::size_t k,
                           support::ThreadPool* pool = nullptr);

/// Exact k-colorability by branch-and-bound with pruning; intended for
/// graphs of up to ~30 vertices (test oracles). Returns a full coloring or
/// nullopt if the graph is not k-colorable. `fixed` may pre-color vertices.
std::optional<Coloring> exact_color(const Graph& g, std::size_t k,
                                    const Coloring& fixed = {});

/// Exact chromatic number (same size limits as exact_color).
std::size_t chromatic_number(const Graph& g);

}  // namespace parmem::graph
