#include "graph/coloring.h"

#include <algorithm>

#include "support/diagnostics.h"
#include "support/thread_pool.h"

namespace parmem::graph {

bool is_valid_coloring(const Graph& g, const Coloring& coloring,
                       std::size_t k) {
  if (coloring.size() != g.vertex_count()) return false;
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    const std::int32_t c = coloring[v];
    if (c == kUncolored) continue;
    if (c < 0 || static_cast<std::size_t>(c) >= k) return false;
    for (const Vertex w : g.neighbors(v)) {
      if (coloring[w] == c) return false;
    }
  }
  return true;
}

namespace {

/// Smallest color in [0,k) unused by v's neighbors, or kUncolored.
std::int32_t first_free_color(const Graph& g, const Coloring& coloring,
                              Vertex v, std::size_t k) {
  std::vector<bool> used(k, false);
  for (const Vertex w : g.neighbors(v)) {
    const std::int32_t c = coloring[w];
    if (c >= 0 && static_cast<std::size_t>(c) < k) used[c] = true;
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (!used[c]) return static_cast<std::int32_t>(c);
  }
  return kUncolored;
}

}  // namespace

Coloring first_fit(const Graph& g, std::size_t k,
                   const std::vector<Vertex>& order) {
  PARMEM_CHECK(order.size() == g.vertex_count(),
               "order must list every vertex exactly once");
  Coloring coloring(g.vertex_count(), kUncolored);
  for (const Vertex v : order) {
    coloring[v] = first_free_color(g, coloring, v, k);
  }
  return coloring;
}

Coloring dsatur(const Graph& g, std::size_t k) {
  const std::size_t n = g.vertex_count();
  Coloring coloring(n, kUncolored);
  std::vector<bool> done(n, false);
  for (std::size_t step = 0; step < n; ++step) {
    // Pick the undone vertex with max saturation (distinct neighbor colors),
    // ties by max degree, then lowest id.
    Vertex best = 0;
    std::int64_t best_key = -1;
    for (Vertex v = 0; v < n; ++v) {
      if (done[v]) continue;
      std::vector<bool> seen(k, false);
      std::int64_t sat = 0;
      for (const Vertex w : g.neighbors(v)) {
        const std::int32_t c = coloring[w];
        if (c >= 0 && !seen[c]) {
          seen[c] = true;
          ++sat;
        }
      }
      const std::int64_t key =
          sat * static_cast<std::int64_t>(n + 1) +
          static_cast<std::int64_t>(g.degree(v));
      if (key > best_key) {
        best_key = key;
        best = v;
      }
    }
    coloring[best] = first_free_color(g, coloring, best, k);
    done[best] = true;
  }
  return coloring;
}

Coloring dsatur_components(const Graph& g, std::size_t k,
                           support::ThreadPool* pool) {
  const auto comps = g.components();
  Coloring coloring(g.vertex_count(), kUncolored);
  // Each task colors its component's induced subgraph and writes only its
  // own vertices' slots, so the result is schedule-independent.
  std::vector<Coloring> local(comps.size());
  const auto color_one = [&](std::size_t i) {
    local[i] = dsatur(g.induced(comps[i]), k);
  };
  if (pool != nullptr) {
    pool->parallel_for(comps.size(), color_one);
  } else {
    for (std::size_t i = 0; i < comps.size(); ++i) color_one(i);
  }
  for (std::size_t i = 0; i < comps.size(); ++i) {
    for (std::size_t j = 0; j < comps[i].size(); ++j) {
      coloring[comps[i][j]] = local[i][j];
    }
  }
  return coloring;
}

namespace {

bool exact_color_rec(const Graph& g, std::size_t k, Coloring& coloring,
                     const std::vector<Vertex>& order, std::size_t idx,
                     std::size_t max_used) {
  if (idx == order.size()) return true;
  const Vertex v = order[idx];
  if (coloring[v] != kUncolored) {
    return exact_color_rec(g, k, coloring, order, idx + 1, max_used);
  }
  std::vector<bool> used(k, false);
  for (const Vertex w : g.neighbors(v)) {
    const std::int32_t c = coloring[w];
    if (c >= 0) used[c] = true;
  }
  // Symmetry breaking: allow at most one brand-new color.
  const std::size_t limit = std::min(k, max_used + 1);
  for (std::size_t c = 0; c < limit; ++c) {
    if (used[c]) continue;
    coloring[v] = static_cast<std::int32_t>(c);
    if (exact_color_rec(g, k, coloring, order, idx + 1,
                        std::max(max_used, c + 1))) {
      return true;
    }
  }
  coloring[v] = kUncolored;
  return false;
}

}  // namespace

std::optional<Coloring> exact_color(const Graph& g, std::size_t k,
                                    const Coloring& fixed) {
  const std::size_t n = g.vertex_count();
  Coloring coloring(n, kUncolored);
  std::size_t max_used = 0;
  if (!fixed.empty()) {
    PARMEM_CHECK(fixed.size() == n, "fixed coloring size mismatch");
    coloring = fixed;
    PARMEM_CHECK(is_valid_coloring(g, coloring, k),
                 "fixed pre-coloring is itself invalid");
    for (const std::int32_t c : coloring) {
      if (c >= 0) max_used = std::max(max_used, static_cast<std::size_t>(c) + 1);
    }
    // Pre-colored vertices break the new-color symmetry argument.
    max_used = std::max(max_used, k);
  }
  // Order by decreasing degree: fail fast on dense parts.
  std::vector<Vertex> order(n);
  for (Vertex v = 0; v < n; ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
    return g.degree(a) > g.degree(b);
  });
  if (exact_color_rec(g, k, coloring, order, 0, max_used)) {
    return coloring;
  }
  return std::nullopt;
}

std::size_t chromatic_number(const Graph& g) {
  if (g.vertex_count() == 0) return 0;
  for (std::size_t k = 1; k <= g.vertex_count(); ++k) {
    if (exact_color(g, k).has_value()) return k;
  }
  PARMEM_UNREACHABLE("n colors always suffice");
}

}  // namespace parmem::graph
