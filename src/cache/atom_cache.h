// Persistent atom-granular memo store for incremental recompilation.
//
// AtomCache is the durable backend behind assign::AtomMemoStore: every
// per-unit memo the assigner produces (decomposition, per-atom coloring
// delta, per-atom duplication delta, seen-marker) is journaled to disk so
// the *next* compile — in this process or after a daemon restart — can
// replay the untouched units verbatim and recolor only the dirty ones.
//
// Persistence mirrors service::ResultCache's crash-safety scheme, with the
// kind folded into the file name:
//
//   <dir>/<2-hex-kind><16-hex-key>.atom
//
// written via support::write_file_atomic (write temp sibling, fsync,
// rename). Each file carries a one-line header with the secondary check
// hash, payload length, and FNV-1a payload checksum:
//
//   "parmem-atom 1 <kind> <16-hex-check> <len> <16-hex-checksum>\n"
//
// A warm restart loads exactly the entries that were fully published; a
// process killed mid-store leaves either no file or a `.tmp-*` orphan, both
// skipped on reload (counted in Stats::load_errors) — never a torn entry.
// The cache is an accelerator: any corrupt, truncated, or check-mismatched
// entry degrades to a memo miss, never to a wrong answer (the assigner
// re-derives and re-stores) and never to a crashed process.
//
// Capacity is bounded by `max_entries` (0 = unbounded) with LRU eviction:
// lookups and stores refresh recency; the journal file of an evicted entry
// is unlinked. On warm restart, recency is rebuilt from file mtimes so a
// restarted daemon evicts the same cold tail a surviving one would have.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "assign/incremental.h"

namespace parmem::cache {

class AtomCache final : public assign::AtomMemoStore {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t check_mismatches = 0;  // key collided, check hash differed
    std::uint64_t stores = 0;
    std::uint64_t store_errors = 0;  // persist failures (entry stays in RAM)
    std::uint64_t loaded = 0;        // entries recovered at construction
    std::uint64_t load_errors = 0;   // corrupt/orphaned files skipped
    std::uint64_t evicted = 0;       // LRU victims dropped (file unlinked)
  };

  /// Memory-only store when `dir` is empty; otherwise creates `dir` as
  /// needed and warm-loads every valid journal entry (oldest-mtime first,
  /// so in-memory recency matches on-disk age). `max_entries` caps the
  /// entry count, 0 = unbounded.
  explicit AtomCache(std::string dir = "", std::size_t max_entries = 0);

  AtomCache(const AtomCache&) = delete;
  AtomCache& operator=(const AtomCache&) = delete;

  // assign::AtomMemoStore. Thread-safe.
  std::optional<std::string> lookup(assign::MemoKind kind, std::uint64_t key,
                                    std::uint64_t check) override;
  void store(assign::MemoKind kind, std::uint64_t key, std::uint64_t check,
             std::string_view payload) override;

  std::size_t size() const;
  const std::string& dir() const { return dir_; }
  std::size_t max_entries() const { return max_entries_; }
  Stats stats() const;

  /// Journal path for an entry ("" for a memory-only cache). Exposed for
  /// the warm-restart and torn-entry tests.
  std::string entry_path(assign::MemoKind kind, std::uint64_t key) const;

 private:
  struct Key {
    std::uint8_t kind;
    std::uint64_t key;
    bool operator==(const Key& o) const {
      return kind == o.kind && key == o.key;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(k.key ^
                                      (static_cast<std::uint64_t>(k.kind)
                                       << 56));
    }
  };
  struct Entry {
    std::uint64_t check = 0;
    std::string payload;
    std::uint64_t seq = 0;  // recency stamp; larger = more recent
  };

  void load_journal();
  /// Moves `it` to the back of the recency order. Caller holds mu_.
  void touch(std::unordered_map<Key, Entry, KeyHash>::iterator it);
  /// Evicts LRU entries until size <= max_entries_; returns the journal
  /// paths to unlink. Caller holds mu_.
  std::vector<std::string> evict_locked();

  std::string dir_;
  std::size_t max_entries_ = 0;
  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::map<std::uint64_t, Key> recency_;  // seq -> key, ordered oldest-first
  std::uint64_t next_seq_ = 1;
  Stats stats_;
};

}  // namespace parmem::cache
