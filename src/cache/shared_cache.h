// Shared-cache data distribution — the paper's second application (§3).
//
// "In systems where the caches are associated with the shared memory [the
// Alliant FX/8], the shared data can reside in the shared caches and can be
// accessed in parallel by the processors at high speed. However, the
// performance of the system can deteriorate if multiple hits occur on the
// same cache. Information on access frequency of shared data items can be
// used to determine a distribution of data items ... which is likely to
// avoid multiple hits on the same cache. If the data is read-only, then the
// techniques described in this paper can be used to create multiple copies
// of data items which are stored in different main memory modules."
//
// The mapping onto the module-assignment machinery is direct:
//   shared caches            -> memory modules
//   read-only data items     -> data values (always duplicable)
//   sets of items processors touch in the same cycle -> access tuples,
//     weighted by how often the access pattern occurs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "assign/assigner.h"

namespace parmem::cache {

/// One group of shared data items that distinct processors access
/// simultaneously, with the number of cycles this pattern occurs (its
/// access frequency — the paper's distribution hint).
struct AccessGroup {
  std::vector<std::uint32_t> items;  // data item ids
  std::uint64_t frequency = 1;
};

struct CachePlanOptions {
  std::size_t cache_count = 4;
  assign::DupMethod method = assign::DupMethod::kHittingSet;
  /// Items may only be replicated when read-only (writable shared data
  /// would need coherence, which shared caches of this era lacked).
  std::vector<bool> read_only;  // per item; empty == all read-only
  std::uint64_t seed = 0xca4eULL;
};

struct CachePlan {
  std::size_t cache_count = 0;
  /// Per item: bit mask of caches holding it.
  std::vector<assign::ModuleSet> item_caches;
  std::size_t replicated_items = 0;
  std::size_t total_placements = 0;
  /// Frequency-weighted count of group occurrences that would suffer a
  /// multiple hit on one cache, before (every item in cache 0 — the naive
  /// layout) and after planning.
  std::uint64_t multi_hit_weight_before = 0;
  std::uint64_t multi_hit_weight_after = 0;
};

/// Plans a distribution of `item_count` shared data items over caches so
/// that the (frequency-weighted) simultaneous access groups hit distinct
/// caches wherever possible.
CachePlan plan_shared_caches(std::size_t item_count,
                             const std::vector<AccessGroup>& groups,
                             const CachePlanOptions& options);

}  // namespace parmem::cache
