#include "cache/shared_cache.h"

#include <algorithm>

#include "assign/verify.h"
#include "support/diagnostics.h"
#include "support/matching.h"

namespace parmem::cache {
namespace {

/// Frequency-weighted multiple-hit cost of a placement: a group costs its
/// frequency when its items cannot hit pairwise-distinct caches.
std::uint64_t multi_hit_weight(const std::vector<AccessGroup>& groups,
                               const std::vector<assign::ModuleSet>& placement,
                               std::size_t cache_count) {
  std::uint64_t weight = 0;
  for (const AccessGroup& g : groups) {
    std::vector<std::vector<std::uint32_t>> choices;
    bool incomplete = false;
    for (const std::uint32_t item : g.items) {
      if (placement[item] == 0) {
        incomplete = true;
        break;
      }
      choices.push_back(assign::modules_of(placement[item]));
    }
    if (incomplete ||
        !support::has_distinct_representatives(choices, cache_count)) {
      weight += g.frequency;
    }
  }
  return weight;
}

}  // namespace

CachePlan plan_shared_caches(std::size_t item_count,
                             const std::vector<AccessGroup>& groups,
                             const CachePlanOptions& options) {
  PARMEM_CHECK(options.cache_count >= 1 &&
                   options.cache_count <= assign::kMaxModules,
               "cache count out of range");
  PARMEM_CHECK(options.read_only.empty() ||
                   options.read_only.size() == item_count,
               "read_only mask size mismatch");

  // Build the access stream: each group contributes its tuple with a
  // multiplicity proportional to its frequency, so conf() — and with it the
  // coloring urgency — reflects access frequency, the paper's hint.
  // Frequencies are clamped into a small repetition budget to keep the
  // stream compact while preserving relative order of magnitude.
  std::uint64_t max_freq = 1;
  for (const AccessGroup& g : groups) {
    max_freq = std::max(max_freq, g.frequency);
  }
  const std::uint64_t scale = std::max<std::uint64_t>(1, max_freq / 16);

  std::vector<std::vector<ir::ValueId>> tuples;
  for (const AccessGroup& g : groups) {
    PARMEM_CHECK(!g.items.empty(), "empty access group");
    for (const std::uint32_t item : g.items) {
      PARMEM_CHECK(item < item_count, "access group item out of range");
    }
    const std::uint64_t reps =
        std::max<std::uint64_t>(1, g.frequency / scale);
    for (std::uint64_t r = 0; r < reps; ++r) {
      tuples.emplace_back(g.items.begin(), g.items.end());
    }
  }

  ir::AccessStream stream =
      ir::AccessStream::from_tuples(item_count, std::move(tuples));
  if (!options.read_only.empty()) {
    for (std::size_t i = 0; i < item_count; ++i) {
      stream.duplicatable[i] = options.read_only[i];
    }
  }

  assign::AssignOptions ao;
  ao.module_count = options.cache_count;
  ao.method = options.method;
  ao.seed = options.seed;
  const assign::AssignResult result = assign::assign_modules(stream, ao);

  CachePlan plan;
  plan.cache_count = options.cache_count;
  plan.item_caches = result.placement;
  for (const assign::ModuleSet s : plan.item_caches) {
    const std::size_t copies = assign::copy_count(s);
    plan.total_placements += copies;
    if (copies > 1) ++plan.replicated_items;
  }

  // Naive baseline: everything in cache 0.
  std::vector<assign::ModuleSet> naive(item_count, assign::module_bit(0));
  plan.multi_hit_weight_before =
      multi_hit_weight(groups, naive, options.cache_count);
  plan.multi_hit_weight_after =
      multi_hit_weight(groups, plan.item_caches, options.cache_count);
  return plan;
}

}  // namespace parmem::cache
