#include "cache/atom_cache.h"

#include <algorithm>
#include <cstdio>

#include "support/fault_injection.h"
#include "support/file_io.h"

namespace parmem::cache {
namespace {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string encode_entry(assign::MemoKind kind, std::uint64_t check,
                         std::string_view payload) {
  char head[96];
  std::snprintf(head, sizeof head, "parmem-atom 1 %u %016llx %zu %016llx\n",
                static_cast<unsigned>(kind),
                static_cast<unsigned long long>(check), payload.size(),
                static_cast<unsigned long long>(fnv1a64(payload)));
  std::string out(head);
  out.append(payload);
  return out;
}

struct DecodedEntry {
  assign::MemoKind kind;
  std::uint64_t check;
  std::string payload;
};

/// Validates and strips the entry header. nullopt on any mismatch.
std::optional<DecodedEntry> decode_entry(const std::string& bytes) {
  const std::size_t nl = bytes.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  char tag[16] = {};
  unsigned kind = 0;
  unsigned long long check = 0, sum = 0;
  std::size_t len = 0;
  if (std::sscanf(bytes.c_str(), "parmem-atom %15s %u %llx %zu %llx", tag,
                  &kind, &check, &len, &sum) != 5 ||
      std::string_view(tag) != "1") {
    return std::nullopt;
  }
  if (kind == 0 || kind > 0xff) return std::nullopt;
  if (bytes.size() - nl - 1 != len) return std::nullopt;
  std::string payload = bytes.substr(nl + 1);
  if (fnv1a64(payload) != sum) return std::nullopt;
  return DecodedEntry{static_cast<assign::MemoKind>(kind), check,
                      std::move(payload)};
}

std::optional<std::pair<std::uint8_t, std::uint64_t>> key_of_filename(
    const std::string& name) {
  // "<2-hex-kind><16-hex-key>.atom"
  if (name.size() != 23 || name.substr(18) != ".atom") return std::nullopt;
  std::uint64_t kind = 0, key = 0;
  for (std::size_t i = 0; i < 18; ++i) {
    const char ch = name[i];
    std::uint64_t d;
    if (ch >= '0' && ch <= '9') d = static_cast<std::uint64_t>(ch - '0');
    else if (ch >= 'a' && ch <= 'f') d = static_cast<std::uint64_t>(ch - 'a') + 10;
    else return std::nullopt;
    if (i < 2) kind = (kind << 4) | d;
    else key = (key << 4) | d;
  }
  if (kind == 0) return std::nullopt;
  return std::make_pair(static_cast<std::uint8_t>(kind), key);
}

}  // namespace

AtomCache::AtomCache(std::string dir, std::size_t max_entries)
    : dir_(std::move(dir)), max_entries_(max_entries) {
  if (!dir_.empty()) {
    if (support::ensure_directory(dir_)) {
      load_journal();
    } else {
      // An unusable cache dir degrades to memory-only; persistence
      // failures show up in stats().
      ++stats_.load_errors;
      dir_.clear();
    }
  }
}

void AtomCache::load_journal() {
  // Order by mtime (oldest first) so the rebuilt recency order matches
  // on-disk age: the entries a surviving process would evict first are the
  // ones a restarted process evicts first too.
  struct Candidate {
    std::int64_t mtime;
    std::string name;
    std::uint8_t kind;
    std::uint64_t key;
  };
  std::vector<Candidate> files;
  for (const std::string& name : support::list_directory(dir_)) {
    const auto parsed = key_of_filename(name);
    if (!parsed.has_value()) {
      // `.tmp-*` orphans from a killed store, or foreign files.
      ++stats_.load_errors;
      continue;
    }
    const auto mt = support::file_mtime(dir_ + "/" + name);
    files.push_back(Candidate{mt.value_or(0), name, parsed->first,
                              parsed->second});
  }
  std::stable_sort(files.begin(), files.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.mtime < b.mtime;
                   });
  std::vector<std::string> doomed;
  for (const Candidate& f : files) {
    std::optional<DecodedEntry> entry;
    try {
      PARMEM_FAULT_POINT("cache.atom_journal", nullptr);
      const auto bytes = support::read_file(dir_ + "/" + f.name);
      if (bytes.has_value()) entry = decode_entry(*bytes);
    } catch (...) {
      // An injected (or real) fault while reading one entry costs that
      // entry, not the warm start.
      entry.reset();
    }
    if (!entry.has_value() ||
        static_cast<std::uint8_t>(entry->kind) != f.kind) {
      ++stats_.load_errors;
      continue;
    }
    const Key k{f.kind, f.key};
    Entry e;
    e.check = entry->check;
    e.payload = std::move(entry->payload);
    e.seq = next_seq_++;
    recency_.emplace(e.seq, k);
    entries_.emplace(k, std::move(e));
    ++stats_.loaded;
  }
  if (max_entries_ != 0 && entries_.size() > max_entries_) {
    doomed = evict_locked();  // single-threaded here; lock not yet needed
  }
  for (const std::string& path : doomed) support::remove_file(path);
}

std::string AtomCache::entry_path(assign::MemoKind kind,
                                  std::uint64_t key) const {
  if (dir_.empty()) return "";
  char name[40];
  std::snprintf(name, sizeof name, "%02x%016llx.atom",
                static_cast<unsigned>(kind),
                static_cast<unsigned long long>(key));
  return dir_ + "/" + name;
}

void AtomCache::touch(
    std::unordered_map<Key, Entry, KeyHash>::iterator it) {
  recency_.erase(it->second.seq);
  it->second.seq = next_seq_++;
  recency_.emplace(it->second.seq, it->first);
}

std::vector<std::string> AtomCache::evict_locked() {
  std::vector<std::string> doomed;
  while (max_entries_ != 0 && entries_.size() > max_entries_ &&
         !recency_.empty()) {
    const auto oldest = recency_.begin();
    const Key victim = oldest->second;
    recency_.erase(oldest);
    entries_.erase(victim);
    ++stats_.evicted;
    if (!dir_.empty()) {
      doomed.push_back(
          entry_path(static_cast<assign::MemoKind>(victim.kind), victim.key));
    }
  }
  return doomed;
}

std::optional<std::string> AtomCache::lookup(assign::MemoKind kind,
                                             std::uint64_t key,
                                             std::uint64_t check) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(Key{static_cast<std::uint8_t>(kind), key});
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second.check != check) {
    // 64-bit key collided but the independent check hash disagrees: treat
    // as a miss. The assigner will re-derive; first-writer-wins keeps the
    // stored entry (the colliding closures are different inputs anyway).
    ++stats_.check_mismatches;
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  touch(it);
  return it->second.payload;
}

void AtomCache::store(assign::MemoKind kind, std::uint64_t key,
                      std::uint64_t check, std::string_view payload) {
  std::string persist_path;
  std::string persist_bytes;
  std::vector<std::string> doomed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const Key k{static_cast<std::uint8_t>(kind), key};
    const auto [it, inserted] = entries_.emplace(k, Entry{});
    if (!inserted) {
      // First writer wins (replay must stay byte-identical); still counts
      // as recent use.
      touch(it);
      return;
    }
    it->second.check = check;
    it->second.payload.assign(payload.data(), payload.size());
    it->second.seq = next_seq_++;
    recency_.emplace(it->second.seq, k);
    ++stats_.stores;
    if (!dir_.empty()) {
      persist_path = entry_path(kind, key);
      persist_bytes = encode_entry(kind, check, it->second.payload);
    }
    doomed = evict_locked();
  }
  for (const std::string& path : doomed) support::remove_file(path);
  if (!persist_path.empty()) {
    bool ok = false;
    try {
      PARMEM_FAULT_POINT("cache.atom_journal", nullptr);
      ok = support::write_file_atomic(persist_path, persist_bytes);
    } catch (...) {
      ok = false;
    }
    if (!ok) {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.store_errors;
    }
  }
}

std::size_t AtomCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

AtomCache::Stats AtomCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace parmem::cache
