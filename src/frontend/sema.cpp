#include "frontend/sema.h"

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace parmem::frontend {
namespace {

[[noreturn]] void sema_error(int line, const std::string& msg) {
  std::ostringstream os;
  os << "semantic error at line " << line << ": " << msg;
  throw support::UserError(os.str());
}

struct VarSym {
  Type type;
};
struct ArraySym {
  Type elem;
  std::int64_t length;
};

class Checker {
 public:
  explicit Checker(Program& p) : prog_(p) {
    for (const Func& f : p.funcs) {
      if (funcs_.count(f.name)) {
        sema_error(f.line, "duplicate function '" + f.name + "'");
      }
      funcs_[f.name] = &f;
    }
  }

  void run() {
    const Func* main = prog_.main();
    if (main == nullptr) sema_error(1, "program has no 'main' function");
    if (!main->params.empty()) {
      sema_error(main->line, "'main' must take no parameters");
    }
    if (main->return_type != Type::kVoid) {
      sema_error(main->line, "'main' must return void");
    }
    for (Func& f : prog_.funcs) check_func(f);
    check_no_recursion();
  }

 private:
  void check_no_recursion() {
    // DFS over the call graph; calls_ was populated during expression
    // checking.
    std::set<std::string> visiting, done;
    const auto dfs = [&](auto&& self, const std::string& f) -> void {
      if (done.count(f)) return;
      if (!visiting.insert(f).second) {
        sema_error(funcs_.at(f)->line,
                   "recursion involving '" + f +
                       "' is not supported (calls are inlined)");
      }
      for (const std::string& g : calls_[f]) self(self, g);
      visiting.erase(f);
      done.insert(f);
    };
    for (const Func& f : prog_.funcs) dfs(dfs, f.name);
  }

  void check_func(Func& f) {
    current_ = &f;
    scopes_.clear();
    arrays_.clear();
    push_scope();
    for (const Param& p : f.params) {
      declare_var(f.line, p.name, p.type);
    }
    check_block(f.body);
    pop_scope();
  }

  void push_scope() {
    scopes_.emplace_back();
    arrays_.emplace_back();
  }
  void pop_scope() {
    scopes_.pop_back();
    arrays_.pop_back();
  }

  void declare_var(int line, const std::string& name, Type t) {
    if (t == Type::kVoid) sema_error(line, "variables cannot be void");
    if (scopes_.back().count(name) || arrays_.back().count(name)) {
      sema_error(line, "redeclaration of '" + name + "' in the same scope");
    }
    scopes_.back()[name] = VarSym{t};
  }

  void declare_array(int line, const std::string& name, Type t,
                     std::int64_t length) {
    if (length <= 0) sema_error(line, "array length must be positive");
    if (scopes_.back().count(name) || arrays_.back().count(name)) {
      sema_error(line, "redeclaration of '" + name + "' in the same scope");
    }
    arrays_.back()[name] = ArraySym{t, length};
  }

  const VarSym* lookup_var(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto f = it->find(name);
      if (f != it->end()) return &f->second;
    }
    return nullptr;
  }

  const ArraySym* lookup_array(const std::string& name) const {
    for (auto it = arrays_.rbegin(); it != arrays_.rend(); ++it) {
      const auto f = it->find(name);
      if (f != it->end()) return &f->second;
    }
    return nullptr;
  }

  void check_block(std::vector<StmtPtr>& stmts) {
    for (StmtPtr& s : stmts) check_stmt(*s);
  }

  void check_stmt(Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kVarDecl: {
        if (s.expr) {
          const Type t = check_expr(*s.expr);
          if (t != s.decl_type) {
            sema_error(s.line, "initializer type " + std::string(type_name(t)) +
                                   " does not match declared type " +
                                   type_name(s.decl_type));
          }
        }
        declare_var(s.line, s.name, s.decl_type);
        break;
      }
      case Stmt::Kind::kArrayDecl:
        declare_array(s.line, s.name, s.decl_type, s.array_length);
        break;
      case Stmt::Kind::kAssign: {
        const VarSym* v = lookup_var(s.name);
        if (v == nullptr) {
          sema_error(s.line, "assignment to undeclared variable '" + s.name +
                                 "'");
        }
        const Type t = check_expr(*s.expr);
        if (t != v->type) {
          sema_error(s.line, std::string("cannot assign ") + type_name(t) +
                                 " to " + type_name(v->type) + " variable '" +
                                 s.name + "'");
        }
        break;
      }
      case Stmt::Kind::kArrayAssign: {
        const ArraySym* a = lookup_array(s.name);
        if (a == nullptr) {
          sema_error(s.line, "store to undeclared array '" + s.name + "'");
        }
        if (check_expr(*s.expr2) != Type::kInt) {
          sema_error(s.line, "array index must be int");
        }
        const Type t = check_expr(*s.expr);
        if (t != a->elem) {
          sema_error(s.line, std::string("cannot store ") + type_name(t) +
                                 " into " + type_name(a->elem) + " array '" +
                                 s.name + "'");
        }
        break;
      }
      case Stmt::Kind::kIf: {
        if (check_expr(*s.expr) != Type::kInt) {
          sema_error(s.line, "if-condition must be int");
        }
        push_scope();
        check_block(s.body);
        pop_scope();
        push_scope();
        check_block(s.else_body);
        pop_scope();
        break;
      }
      case Stmt::Kind::kWhile: {
        if (check_expr(*s.expr) != Type::kInt) {
          sema_error(s.line, "while-condition must be int");
        }
        push_scope();
        check_block(s.body);
        pop_scope();
        break;
      }
      case Stmt::Kind::kFor: {
        const VarSym* v = lookup_var(s.name);
        if (v == nullptr || v->type != Type::kInt) {
          sema_error(s.line, "for-loop variable '" + s.name +
                                 "' must be a declared int variable");
        }
        if (check_expr(*s.expr) != Type::kInt ||
            check_expr(*s.expr2) != Type::kInt) {
          sema_error(s.line, "for-loop bounds must be int");
        }
        push_scope();
        check_block(s.body);
        pop_scope();
        break;
      }
      case Stmt::Kind::kPrint: {
        const Type t = check_expr(*s.expr);
        if (t == Type::kVoid) sema_error(s.line, "cannot print void");
        break;
      }
      case Stmt::Kind::kReturn: {
        const Type t = s.expr ? check_expr(*s.expr) : Type::kVoid;
        if (t != current_->return_type) {
          sema_error(s.line, std::string("return type mismatch: function "
                                         "returns ") +
                                 type_name(current_->return_type) + ", got " +
                                 type_name(t));
        }
        break;
      }
      case Stmt::Kind::kExpr: {
        if (s.expr->kind != Expr::Kind::kCall) {
          sema_error(s.line, "expression statement must be a call");
        }
        check_expr(*s.expr);
        break;
      }
      case Stmt::Kind::kBlock: {
        push_scope();
        check_block(s.body);
        pop_scope();
        break;
      }
    }
  }

  Type check_expr(Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIntLit:
        return e.type = Type::kInt;
      case Expr::Kind::kRealLit:
        return e.type = Type::kReal;
      case Expr::Kind::kVarRef: {
        const VarSym* v = lookup_var(e.name);
        if (v == nullptr) {
          sema_error(e.line, "use of undeclared variable '" + e.name + "'");
        }
        return e.type = v->type;
      }
      case Expr::Kind::kArrayRef: {
        const ArraySym* a = lookup_array(e.name);
        if (a == nullptr) {
          sema_error(e.line, "use of undeclared array '" + e.name + "'");
        }
        if (check_expr(*e.a) != Type::kInt) {
          sema_error(e.line, "array index must be int");
        }
        return e.type = a->elem;
      }
      case Expr::Kind::kUnary: {
        const Type t = check_expr(*e.a);
        if (e.un_op == UnOp::kNot && t != Type::kInt) {
          sema_error(e.line, "'!' requires an int operand");
        }
        if (t == Type::kVoid) sema_error(e.line, "void operand");
        return e.type = t;
      }
      case Expr::Kind::kBinary: {
        const Type ta = check_expr(*e.a);
        const Type tb = check_expr(*e.b);
        if (ta != tb) {
          sema_error(e.line, std::string("operand type mismatch: ") +
                                 type_name(ta) + " vs " + type_name(tb) +
                                 " (convert explicitly with int()/real())");
        }
        switch (e.bin_op) {
          case BinOp::kMod:
          case BinOp::kAnd:
          case BinOp::kOr:
            if (ta != Type::kInt) {
              sema_error(e.line, "operator requires int operands");
            }
            return e.type = Type::kInt;
          case BinOp::kEq:
          case BinOp::kNe:
          case BinOp::kLt:
          case BinOp::kLe:
          case BinOp::kGt:
          case BinOp::kGe:
            return e.type = Type::kInt;
          default:
            return e.type = ta;
        }
      }
      case Expr::Kind::kCall:
        return e.type = check_call(e);
    }
    PARMEM_UNREACHABLE("bad expr kind");
  }

  Type check_call(Expr& e) {
    const auto arg_type = [&](std::size_t i) { return check_expr(*e.args[i]); };
    // Builtins.
    if (e.name == "sqrt" || e.name == "sin" || e.name == "cos") {
      if (e.args.size() != 1 || arg_type(0) != Type::kReal) {
        sema_error(e.line, "'" + e.name + "' takes one real argument");
      }
      return Type::kReal;
    }
    if (e.name == "abs") {
      if (e.args.size() != 1) sema_error(e.line, "'abs' takes one argument");
      const Type t = arg_type(0);
      if (t == Type::kVoid) sema_error(e.line, "'abs' of void");
      return t;
    }
    if (e.name == "int") {
      if (e.args.size() != 1 || arg_type(0) != Type::kReal) {
        sema_error(e.line, "'int' converts one real argument");
      }
      return Type::kInt;
    }
    if (e.name == "real") {
      if (e.args.size() != 1 || arg_type(0) != Type::kInt) {
        sema_error(e.line, "'real' converts one int argument");
      }
      return Type::kReal;
    }
    // User function.
    const auto it = funcs_.find(e.name);
    if (it == funcs_.end()) {
      sema_error(e.line, "call to undeclared function '" + e.name + "'");
    }
    const Func* callee = it->second;
    if (e.args.size() != callee->params.size()) {
      sema_error(e.line, "'" + e.name + "' expects " +
                             std::to_string(callee->params.size()) +
                             " arguments, got " +
                             std::to_string(e.args.size()));
    }
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      if (arg_type(i) != callee->params[i].type) {
        sema_error(e.line, "argument " + std::to_string(i + 1) + " of '" +
                               e.name + "' must be " +
                               type_name(callee->params[i].type));
      }
    }
    calls_[current_->name].insert(e.name);
    return callee->return_type;
  }

  Program& prog_;
  std::map<std::string, const Func*> funcs_;
  std::map<std::string, std::set<std::string>> calls_;
  const Func* current_ = nullptr;
  std::vector<std::map<std::string, VarSym>> scopes_;
  std::vector<std::map<std::string, ArraySym>> arrays_;
};

}  // namespace

void sema(Program& program) { Checker(program).run(); }

}  // namespace parmem::frontend
