#include "frontend/unroll.h"

#include <memory>

#include "support/diagnostics.h"

namespace parmem::frontend {
namespace {

ExprPtr clone_expr(const Expr& e) {
  auto c = std::make_unique<Expr>();
  c->kind = e.kind;
  c->line = e.line;
  c->int_value = e.int_value;
  c->real_value = e.real_value;
  c->name = e.name;
  c->bin_op = e.bin_op;
  c->un_op = e.un_op;
  c->type = e.type;
  if (e.a) c->a = clone_expr(*e.a);
  if (e.b) c->b = clone_expr(*e.b);
  for (const auto& arg : e.args) c->args.push_back(clone_expr(*arg));
  return c;
}

StmtPtr clone_stmt(const Stmt& s) {
  auto c = std::make_unique<Stmt>();
  c->kind = s.kind;
  c->line = s.line;
  c->name = s.name;
  c->decl_type = s.decl_type;
  c->array_length = s.array_length;
  if (s.expr) c->expr = clone_expr(*s.expr);
  if (s.expr2) c->expr2 = clone_expr(*s.expr2);
  for (const auto& b : s.body) c->body.push_back(clone_stmt(*b));
  for (const auto& b : s.else_body) c->else_body.push_back(clone_stmt(*b));
  return c;
}

std::size_t count_stmts(const std::vector<StmtPtr>& stmts) {
  std::size_t n = 0;
  for (const auto& s : stmts) {
    n += 1 + count_stmts(s->body) + count_stmts(s->else_body);
  }
  return n;
}

ExprPtr int_lit(std::int64_t v, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kIntLit;
  e->int_value = v;
  e->line = line;
  e->type = Type::kInt;
  return e;
}

class Unroller {
 public:
  Unroller(const UnrollOptions& opts, std::size_t initial_size)
      : opts_(opts), budget_used_(initial_size) {}

  UnrollStats stats;

  void walk(std::vector<StmtPtr>& stmts) {
    for (std::size_t i = 0; i < stmts.size(); ++i) {
      Stmt& s = *stmts[i];
      walk(s.body);
      walk(s.else_body);
      if (s.kind != Stmt::Kind::kFor) continue;
      if (!s.expr || !s.expr2) continue;
      if (s.expr->kind != Expr::Kind::kIntLit ||
          s.expr2->kind != Expr::Kind::kIntLit) {
        continue;  // bounds not compile-time constants
      }
      const std::int64_t lo = s.expr->int_value;
      const std::int64_t hi = s.expr2->int_value;
      const std::int64_t trip = hi >= lo ? hi - lo + 1 : 0;
      if (trip > static_cast<std::int64_t>(opts_.max_trip)) continue;

      const std::size_t body_size = count_stmts(s.body) + 2;
      const std::size_t cost = static_cast<std::size_t>(trip) * body_size;
      if (budget_used_ + cost > opts_.max_statements) continue;
      budget_used_ += cost;

      // Replacement: { i = lo; body } { i = lo+1; body } ... ; i = hi+1.
      std::vector<StmtPtr> replacement;
      for (std::int64_t it = 0; it < trip; ++it) {
        auto block = std::make_unique<Stmt>();
        block->kind = Stmt::Kind::kBlock;
        block->line = s.line;
        auto set_i = std::make_unique<Stmt>();
        set_i->kind = Stmt::Kind::kAssign;
        set_i->line = s.line;
        set_i->name = s.name;
        set_i->expr = int_lit(lo + it, s.line);
        block->body.push_back(std::move(set_i));
        for (const auto& b : s.body) block->body.push_back(clone_stmt(*b));
        replacement.push_back(std::move(block));
        ++stats.copies_emitted;
      }
      // The loop variable's exit value: lo when the loop never ran, hi+1
      // otherwise (matching the lowered increment-then-test form).
      auto final_i = std::make_unique<Stmt>();
      final_i->kind = Stmt::Kind::kAssign;
      final_i->line = s.line;
      final_i->name = s.name;
      final_i->expr = int_lit(trip == 0 ? lo : hi + 1, s.line);
      replacement.push_back(std::move(final_i));

      ++stats.loops_unrolled;
      stmts.erase(stmts.begin() + static_cast<std::ptrdiff_t>(i));
      stmts.insert(stmts.begin() + static_cast<std::ptrdiff_t>(i),
                   std::make_move_iterator(replacement.begin()),
                   std::make_move_iterator(replacement.end()));
      i += replacement.size() - 1;
    }
  }

 private:
  const UnrollOptions& opts_;
  std::size_t budget_used_;
};

}  // namespace

UnrollStats unroll_loops(Program& program, const UnrollOptions& opts) {
  if (opts.max_trip == 0) return {};
  std::size_t initial = 0;
  for (const Func& f : program.funcs) initial += count_stmts(f.body);
  Unroller u(opts, initial);
  for (Func& f : program.funcs) u.walk(f.body);
  return u.stats;
}

}  // namespace parmem::frontend
