// Recursive-descent parser for MC.
#pragma once

#include <string_view>

#include "frontend/ast.h"

namespace parmem::frontend {

/// Parses MC source text into an AST. Throws support::UserError with a
/// line:column message on syntax errors — prefixed "name:line:col:" when
/// `source_name` is non-empty. Run sema() afterwards to type-check.
Program parse(std::string_view source, std::string_view source_name = {});

}  // namespace parmem::frontend
