#include "frontend/parser.h"

#include <sstream>

#include "frontend/lexer.h"
#include "support/diagnostics.h"

namespace parmem::frontend {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens, std::string_view source_name)
      : toks_(std::move(tokens)), source_name_(source_name) {}

  Program parse_program() {
    Program p;
    while (!at(TokKind::kEof)) {
      p.funcs.push_back(parse_func());
    }
    return p;
  }

 private:
  /// Deepest allowed expression/statement nesting: recursive descent uses
  /// the machine stack, so unbounded nesting in hostile input would
  /// overflow it instead of reporting a UserError.
  static constexpr int kMaxDepth = 256;

  const Token& cur() const { return toks_[pos_]; }
  bool at(TokKind k) const { return cur().kind == k; }

  [[noreturn]] void error(const std::string& msg) const {
    std::ostringstream os;
    if (source_name_.empty()) {
      os << "parse error at " << cur().line << ":" << cur().col << ": ";
    } else {
      os << source_name_ << ":" << cur().line << ":" << cur().col
         << ": parse error: ";
    }
    os << msg << " (found " << tok_kind_name(cur().kind)
       << (cur().text.empty() ? "" : " '" + cur().text + "'") << ")";
    throw support::UserError(os.str());
  }

  /// RAII depth guard for the recursive entry points.
  struct DepthGuard {
    Parser& p;
    explicit DepthGuard(Parser& parser) : p(parser) {
      if (++p.depth_ > kMaxDepth) p.error("nesting too deep");
    }
    ~DepthGuard() { --p.depth_; }
  };

  Token eat(TokKind k, const char* what) {
    if (!at(k)) error(std::string("expected ") + what);
    return toks_[pos_++];
  }

  bool accept(TokKind k) {
    if (at(k)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Type parse_type() {
    if (accept(TokKind::kInt)) return Type::kInt;
    if (accept(TokKind::kReal)) return Type::kReal;
    error("expected a type ('int' or 'real')");
  }

  Func parse_func() {
    Func f;
    f.line = cur().line;
    eat(TokKind::kFunc, "'func'");
    f.name = eat(TokKind::kIdent, "function name").text;
    eat(TokKind::kLParen, "'('");
    if (!at(TokKind::kRParen)) {
      do {
        Param p;
        p.name = eat(TokKind::kIdent, "parameter name").text;
        eat(TokKind::kColon, "':'");
        p.type = parse_type();
        f.params.push_back(std::move(p));
      } while (accept(TokKind::kComma));
    }
    eat(TokKind::kRParen, "')'");
    f.return_type = accept(TokKind::kColon) ? parse_type() : Type::kVoid;
    f.body = parse_block();
    return f;
  }

  std::vector<StmtPtr> parse_block() {
    eat(TokKind::kLBrace, "'{'");
    std::vector<StmtPtr> stmts;
    while (!at(TokKind::kRBrace)) {
      if (at(TokKind::kEof)) error("unterminated block");
      stmts.push_back(parse_stmt());
    }
    eat(TokKind::kRBrace, "'}'");
    return stmts;
  }

  StmtPtr make_stmt(Stmt::Kind k) {
    auto s = std::make_unique<Stmt>();
    s->kind = k;
    s->line = cur().line;
    return s;
  }

  StmtPtr parse_stmt() {
    const DepthGuard depth_guard(*this);
    if (at(TokKind::kVar)) return parse_var_decl();
    if (at(TokKind::kArray)) return parse_array_decl();
    if (at(TokKind::kIf)) return parse_if();
    if (at(TokKind::kWhile)) return parse_while();
    if (at(TokKind::kFor)) return parse_for();
    if (at(TokKind::kPrint)) return parse_print();
    if (at(TokKind::kReturn)) return parse_return();
    if (at(TokKind::kLBrace)) {
      auto s = make_stmt(Stmt::Kind::kBlock);
      s->body = parse_block();
      return s;
    }
    if (at(TokKind::kIdent)) {
      // Assignment, array store, or a call statement.
      const Token id = toks_[pos_];
      if (toks_[pos_ + 1].kind == TokKind::kAssign) {
        auto s = make_stmt(Stmt::Kind::kAssign);
        pos_ += 2;
        s->name = id.text;
        s->expr = parse_expr();
        eat(TokKind::kSemi, "';'");
        return s;
      }
      if (toks_[pos_ + 1].kind == TokKind::kLBracket) {
        // Could be a store `a[i] = e;` or an expression statement starting
        // with an array read; disambiguate by scanning to the matching ']'.
        std::size_t scan = pos_ + 2;
        int depth = 1;
        while (depth > 0 && toks_[scan].kind != TokKind::kEof) {
          if (toks_[scan].kind == TokKind::kLBracket) ++depth;
          if (toks_[scan].kind == TokKind::kRBracket) --depth;
          ++scan;
        }
        if (toks_[scan].kind == TokKind::kAssign) {
          auto s = make_stmt(Stmt::Kind::kArrayAssign);
          s->name = id.text;
          pos_ += 2;
          s->expr2 = parse_expr();  // index
          eat(TokKind::kRBracket, "']'");
          eat(TokKind::kAssign, "'='");
          s->expr = parse_expr();
          eat(TokKind::kSemi, "';'");
          return s;
        }
      }
    }
    // Expression statement (typically a void call).
    auto s = make_stmt(Stmt::Kind::kExpr);
    s->expr = parse_expr();
    eat(TokKind::kSemi, "';'");
    return s;
  }

  StmtPtr parse_var_decl() {
    auto s = make_stmt(Stmt::Kind::kVarDecl);
    eat(TokKind::kVar, "'var'");
    s->name = eat(TokKind::kIdent, "variable name").text;
    eat(TokKind::kColon, "':'");
    s->decl_type = parse_type();
    if (accept(TokKind::kAssign)) s->expr = parse_expr();
    eat(TokKind::kSemi, "';'");
    return s;
  }

  StmtPtr parse_array_decl() {
    auto s = make_stmt(Stmt::Kind::kArrayDecl);
    eat(TokKind::kArray, "'array'");
    s->name = eat(TokKind::kIdent, "array name").text;
    eat(TokKind::kColon, "':'");
    s->decl_type = parse_type();
    eat(TokKind::kLBracket, "'['");
    const Token len = eat(TokKind::kIntLit, "array length literal");
    s->array_length = len.int_value;
    eat(TokKind::kRBracket, "']'");
    eat(TokKind::kSemi, "';'");
    return s;
  }

  StmtPtr parse_if() {
    auto s = make_stmt(Stmt::Kind::kIf);
    eat(TokKind::kIf, "'if'");
    eat(TokKind::kLParen, "'('");
    s->expr = parse_expr();
    eat(TokKind::kRParen, "')'");
    s->body = parse_block();
    if (accept(TokKind::kElse)) {
      if (at(TokKind::kIf)) {
        s->else_body.push_back(parse_if());
      } else {
        s->else_body = parse_block();
      }
    }
    return s;
  }

  StmtPtr parse_while() {
    auto s = make_stmt(Stmt::Kind::kWhile);
    eat(TokKind::kWhile, "'while'");
    eat(TokKind::kLParen, "'('");
    s->expr = parse_expr();
    eat(TokKind::kRParen, "')'");
    s->body = parse_block();
    return s;
  }

  StmtPtr parse_for() {
    auto s = make_stmt(Stmt::Kind::kFor);
    eat(TokKind::kFor, "'for'");
    s->name = eat(TokKind::kIdent, "loop variable").text;
    eat(TokKind::kAssign, "'='");
    s->expr = parse_expr();
    eat(TokKind::kTo, "'to'");
    s->expr2 = parse_expr();
    s->body = parse_block();
    return s;
  }

  StmtPtr parse_print() {
    auto s = make_stmt(Stmt::Kind::kPrint);
    eat(TokKind::kPrint, "'print'");
    eat(TokKind::kLParen, "'('");
    s->expr = parse_expr();
    eat(TokKind::kRParen, "')'");
    eat(TokKind::kSemi, "';'");
    return s;
  }

  StmtPtr parse_return() {
    auto s = make_stmt(Stmt::Kind::kReturn);
    eat(TokKind::kReturn, "'return'");
    if (!at(TokKind::kSemi)) s->expr = parse_expr();
    eat(TokKind::kSemi, "';'");
    return s;
  }

  // ------------------------------------------------------- expressions --

  ExprPtr make_expr(Expr::Kind k) {
    auto e = std::make_unique<Expr>();
    e->kind = k;
    e->line = cur().line;
    return e;
  }

  ExprPtr parse_expr() {
    const DepthGuard depth_guard(*this);
    return parse_or();
  }

  ExprPtr parse_or() {
    auto lhs = parse_and();
    while (at(TokKind::kOrOr)) {
      auto e = make_expr(Expr::Kind::kBinary);
      ++pos_;
      e->bin_op = BinOp::kOr;
      e->a = std::move(lhs);
      e->b = parse_and();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    auto lhs = parse_cmp();
    while (at(TokKind::kAndAnd)) {
      auto e = make_expr(Expr::Kind::kBinary);
      ++pos_;
      e->bin_op = BinOp::kAnd;
      e->a = std::move(lhs);
      e->b = parse_cmp();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_cmp() {
    auto lhs = parse_add();
    for (;;) {
      BinOp op;
      switch (cur().kind) {
        case TokKind::kEq: op = BinOp::kEq; break;
        case TokKind::kNe: op = BinOp::kNe; break;
        case TokKind::kLt: op = BinOp::kLt; break;
        case TokKind::kLe: op = BinOp::kLe; break;
        case TokKind::kGt: op = BinOp::kGt; break;
        case TokKind::kGe: op = BinOp::kGe; break;
        default: return lhs;
      }
      auto e = make_expr(Expr::Kind::kBinary);
      ++pos_;
      e->bin_op = op;
      e->a = std::move(lhs);
      e->b = parse_add();
      lhs = std::move(e);
    }
  }

  ExprPtr parse_add() {
    auto lhs = parse_mul();
    for (;;) {
      BinOp op;
      if (at(TokKind::kPlus)) {
        op = BinOp::kAdd;
      } else if (at(TokKind::kMinus)) {
        op = BinOp::kSub;
      } else {
        return lhs;
      }
      auto e = make_expr(Expr::Kind::kBinary);
      ++pos_;
      e->bin_op = op;
      e->a = std::move(lhs);
      e->b = parse_mul();
      lhs = std::move(e);
    }
  }

  ExprPtr parse_mul() {
    auto lhs = parse_unary();
    for (;;) {
      BinOp op;
      if (at(TokKind::kStar)) {
        op = BinOp::kMul;
      } else if (at(TokKind::kSlash)) {
        op = BinOp::kDiv;
      } else if (at(TokKind::kPercent)) {
        op = BinOp::kMod;
      } else {
        return lhs;
      }
      auto e = make_expr(Expr::Kind::kBinary);
      ++pos_;
      e->bin_op = op;
      e->a = std::move(lhs);
      e->b = parse_unary();
      lhs = std::move(e);
    }
  }

  ExprPtr parse_unary() {
    if (at(TokKind::kMinus)) {
      auto e = make_expr(Expr::Kind::kUnary);
      ++pos_;
      e->un_op = UnOp::kNeg;
      e->a = parse_unary();
      return e;
    }
    if (at(TokKind::kBang)) {
      auto e = make_expr(Expr::Kind::kUnary);
      ++pos_;
      e->un_op = UnOp::kNot;
      e->a = parse_unary();
      return e;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    if (at(TokKind::kIntLit)) {
      auto e = make_expr(Expr::Kind::kIntLit);
      e->int_value = cur().int_value;
      ++pos_;
      return e;
    }
    if (at(TokKind::kRealLit)) {
      auto e = make_expr(Expr::Kind::kRealLit);
      e->real_value = cur().real_value;
      ++pos_;
      return e;
    }
    if (accept(TokKind::kLParen)) {
      auto e = parse_expr();
      eat(TokKind::kRParen, "')'");
      return e;
    }
    // 'int'/'real' used as conversion builtins: int(e), real(e).
    if (at(TokKind::kInt) || at(TokKind::kReal)) {
      const bool to_int = at(TokKind::kInt);
      auto e = make_expr(Expr::Kind::kCall);
      e->name = to_int ? "int" : "real";
      ++pos_;
      eat(TokKind::kLParen, "'('");
      e->args.push_back(parse_expr());
      eat(TokKind::kRParen, "')'");
      return e;
    }
    if (at(TokKind::kIdent)) {
      const Token id = toks_[pos_++];
      if (accept(TokKind::kLParen)) {
        auto e = make_expr(Expr::Kind::kCall);
        e->name = id.text;
        e->line = id.line;
        if (!at(TokKind::kRParen)) {
          do {
            e->args.push_back(parse_expr());
          } while (accept(TokKind::kComma));
        }
        eat(TokKind::kRParen, "')'");
        return e;
      }
      if (accept(TokKind::kLBracket)) {
        auto e = make_expr(Expr::Kind::kArrayRef);
        e->name = id.text;
        e->line = id.line;
        e->a = parse_expr();
        eat(TokKind::kRBracket, "']'");
        return e;
      }
      auto e = make_expr(Expr::Kind::kVarRef);
      e->name = id.text;
      e->line = id.line;
      return e;
    }
    error("expected an expression");
  }

  std::vector<Token> toks_;
  std::string_view source_name_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Program parse(std::string_view source, std::string_view source_name) {
  return Parser(lex(source, source_name), source_name).parse_program();
}

}  // namespace parmem::frontend
