// Tokens of the MC language.
//
// MC ("mini compiled") is the small imperative source language this library
// compiles for its long-instruction-word target. It stands in for the
// unnamed source language of the paper's RLIW compiler: scalar int/real
// variables, one-dimensional arrays, loops, conditionals and (inlined)
// functions — enough to express all six benchmark programs of §3.
#pragma once

#include <cstdint>
#include <string>

namespace parmem::frontend {

enum class TokKind : std::uint8_t {
  kEof,
  kIdent,
  kIntLit,
  kRealLit,
  // Keywords.
  kVar, kArray, kFunc, kIf, kElse, kWhile, kFor, kTo, kReturn, kPrint,
  kInt, kReal,
  // Punctuation / operators.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemi, kColon,
  kAssign,            // =
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEq, kNe, kLt, kLe, kGt, kGe,   // == != < <= > >=
  kAndAnd, kOrOr, kBang,
};

const char* tok_kind_name(TokKind k);

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;        // identifier spelling / literal spelling
  std::int64_t int_value = 0;
  double real_value = 0.0;
  int line = 1;
  int col = 1;
};

}  // namespace parmem::frontend
