// Loop unrolling (AST level).
//
// The paper's RLIW compiler fed the module-assignment phase *regions* far
// larger than a single source-level basic block (region scheduling, Gupta &
// Soffa 1987). Our stand-in for that region-forming machinery is full
// unrolling of constant-trip-count for-loops: it produces the same effect —
// long straight-line stretches whose packed instructions fetch many scalars
// at once, which is exactly the conflict pressure Table 1 measures.
//
// Only `for i = <int-lit> to <int-lit>` loops with trip count in
// (0, limit] are unrolled; each copy becomes `i = <const>; body...` so
// semantics (including the final value of i) are preserved exactly. Nested
// eligible loops unroll recursively, inner first, subject to a whole-
// function expansion budget.
#pragma once

#include <cstddef>

#include "frontend/ast.h"

namespace parmem::frontend {

struct UnrollOptions {
  /// Max trip count to fully unroll; 0 disables the pass.
  std::size_t max_trip = 32;
  /// Whole-program statement budget: stop unrolling when the total number
  /// of statements would exceed this.
  std::size_t max_statements = 20000;
};

struct UnrollStats {
  std::size_t loops_unrolled = 0;
  std::size_t copies_emitted = 0;  // total body copies
};

/// Unrolls in place. Run before sema? No — after parse and before or after
/// sema both work (the pass emits only constructs that re-check cleanly);
/// the pipeline runs it after sema and re-checks.
UnrollStats unroll_loops(Program& program, const UnrollOptions& opts);

}  // namespace parmem::frontend
