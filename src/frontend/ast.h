// Abstract syntax tree for MC.
//
// Grammar sketch (see README for the full reference):
//
//   program    := { func }
//   func       := 'func' ident '(' params? ')' (':' type)? block
//   params     := ident ':' type { ',' ident ':' type }
//   block      := '{' { stmt } '}'
//   stmt       := 'var' ident ':' type ('=' expr)? ';'
//               | 'array' ident ':' type '[' intlit ']' ';'
//               | ident '=' expr ';'
//               | ident '[' expr ']' '=' expr ';'
//               | 'if' '(' expr ')' block ('else' (block | ifstmt))?
//               | 'while' '(' expr ')' block
//               | 'for' ident '=' expr 'to' expr block       (inclusive)
//               | 'print' '(' expr ')' ';'
//               | 'return' expr? ';'
//               | expr ';'                                    (call stmt)
//   expr       := standard precedence: || > && > cmp > addsub > muldiv >
//                 unary (- !) > primary
//   primary    := literal | ident | ident '(' args ')' | ident '[' expr ']'
//               | '(' expr ')'
//
// Builtins (unary calls): sqrt, sin, cos, abs, int, real.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace parmem::frontend {

enum class Type : std::uint8_t { kInt, kReal, kVoid };
const char* type_name(Type t);

// ---------------------------------------------------------------- Expr ----

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnOp : std::uint8_t { kNeg, kNot };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : std::uint8_t {
    kIntLit, kRealLit, kVarRef, kArrayRef, kBinary, kUnary, kCall,
  };
  Kind kind;
  int line = 0;

  // kIntLit / kRealLit
  std::int64_t int_value = 0;
  double real_value = 0.0;
  // kVarRef / kArrayRef / kCall
  std::string name;
  // kArrayRef: index; kUnary: operand; kBinary: lhs
  ExprPtr a;
  // kBinary: rhs
  ExprPtr b;
  // kBinary / kUnary
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
  // kCall
  std::vector<ExprPtr> args;

  // Filled by sema.
  Type type = Type::kVoid;
};

// ---------------------------------------------------------------- Stmt ----

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : std::uint8_t {
    kVarDecl, kArrayDecl, kAssign, kArrayAssign, kIf, kWhile, kFor,
    kPrint, kReturn, kExpr, kBlock,
  };
  Kind kind;
  int line = 0;

  // kVarDecl / kArrayDecl / kAssign / kArrayAssign / kFor: target name
  std::string name;
  Type decl_type = Type::kInt;     // kVarDecl / kArrayDecl element type
  std::int64_t array_length = 0;   // kArrayDecl

  // kVarDecl: optional init; kAssign/kArrayAssign: value; kIf/kWhile: cond;
  // kFor: lower bound; kPrint/kReturn/kExpr: expression (may be null for
  // bare return).
  ExprPtr expr;
  ExprPtr expr2;  // kArrayAssign: index; kFor: upper bound

  std::vector<StmtPtr> body;       // kIf: then; kWhile/kFor/kBlock: body
  std::vector<StmtPtr> else_body;  // kIf
};

// ---------------------------------------------------------------- Func ----

struct Param {
  std::string name;
  Type type = Type::kInt;
};

struct Func {
  std::string name;
  std::vector<Param> params;
  Type return_type = Type::kVoid;
  std::vector<StmtPtr> body;
  int line = 0;
};

struct Program {
  std::vector<Func> funcs;

  /// The entry function ('main'); sema checks it exists.
  const Func* main() const;
};

}  // namespace parmem::frontend
