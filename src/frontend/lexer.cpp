#include "frontend/lexer.h"

#include <cctype>
#include <charconv>
#include <map>
#include <sstream>

#include "support/diagnostics.h"

namespace parmem::frontend {

const char* tok_kind_name(TokKind k) {
  switch (k) {
    case TokKind::kEof: return "end of input";
    case TokKind::kIdent: return "identifier";
    case TokKind::kIntLit: return "integer literal";
    case TokKind::kRealLit: return "real literal";
    case TokKind::kVar: return "'var'";
    case TokKind::kArray: return "'array'";
    case TokKind::kFunc: return "'func'";
    case TokKind::kIf: return "'if'";
    case TokKind::kElse: return "'else'";
    case TokKind::kWhile: return "'while'";
    case TokKind::kFor: return "'for'";
    case TokKind::kTo: return "'to'";
    case TokKind::kReturn: return "'return'";
    case TokKind::kPrint: return "'print'";
    case TokKind::kInt: return "'int'";
    case TokKind::kReal: return "'real'";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kLBrace: return "'{'";
    case TokKind::kRBrace: return "'}'";
    case TokKind::kLBracket: return "'['";
    case TokKind::kRBracket: return "']'";
    case TokKind::kComma: return "','";
    case TokKind::kSemi: return "';'";
    case TokKind::kColon: return "':'";
    case TokKind::kAssign: return "'='";
    case TokKind::kPlus: return "'+'";
    case TokKind::kMinus: return "'-'";
    case TokKind::kStar: return "'*'";
    case TokKind::kSlash: return "'/'";
    case TokKind::kPercent: return "'%'";
    case TokKind::kEq: return "'=='";
    case TokKind::kNe: return "'!='";
    case TokKind::kLt: return "'<'";
    case TokKind::kLe: return "'<='";
    case TokKind::kGt: return "'>'";
    case TokKind::kGe: return "'>='";
    case TokKind::kAndAnd: return "'&&'";
    case TokKind::kOrOr: return "'||'";
    case TokKind::kBang: return "'!'";
  }
  PARMEM_UNREACHABLE("bad token kind");
}

namespace {

[[noreturn]] void lex_error_at(std::string_view name, int line, int col,
                               const std::string& msg) {
  std::ostringstream os;
  if (name.empty()) {
    os << "lex error at " << line << ":" << col << ": " << msg;
  } else {
    os << name << ":" << line << ":" << col << ": lex error: " << msg;
  }
  throw support::UserError(os.str());
}

const std::map<std::string_view, TokKind>& keywords() {
  static const std::map<std::string_view, TokKind> kw{
      {"var", TokKind::kVar},       {"array", TokKind::kArray},
      {"func", TokKind::kFunc},     {"if", TokKind::kIf},
      {"else", TokKind::kElse},     {"while", TokKind::kWhile},
      {"for", TokKind::kFor},       {"to", TokKind::kTo},
      {"return", TokKind::kReturn}, {"print", TokKind::kPrint},
      {"int", TokKind::kInt},       {"real", TokKind::kReal},
  };
  return kw;
}

}  // namespace

std::vector<Token> lex(std::string_view src, std::string_view source_name) {
  const auto lex_error = [source_name](int line, int col,
                                       const std::string& msg) {
    lex_error_at(source_name, line, col, msg);
  };
  std::vector<Token> out;
  int line = 1, col = 1;
  std::size_t i = 0;

  const auto advance = [&](std::size_t n = 1) {
    for (std::size_t j = 0; j < n && i < src.size(); ++j, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };
  const auto peek = [&](std::size_t off = 0) -> char {
    return i + off < src.size() ? src[i + off] : '\0';
  };
  const auto push = [&](TokKind k, std::string text, int l, int c) {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.line = l;
    t.col = c;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = peek();
    const int l = line, cl = col;
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < src.size() && peek() != '\n') advance();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(
                                    peek())) ||
                                peek() == '_')) {
        advance();
      }
      const std::string_view word = src.substr(start, i - start);
      const auto it = keywords().find(word);
      push(it != keywords().end() ? it->second : TokKind::kIdent,
           std::string(word), l, cl);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      bool is_real = false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_real = true;
        advance();  // '.'
        while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      }
      if (peek() == 'e' || peek() == 'E') {
        std::size_t save = i;
        advance();
        if (peek() == '+' || peek() == '-') advance();
        if (std::isdigit(static_cast<unsigned char>(peek()))) {
          is_real = true;
          while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
        } else {
          i = save;  // not an exponent; restore ('e' begins an identifier)
        }
      }
      const std::string text(src.substr(start, i - start));
      Token t;
      t.text = text;
      t.line = l;
      t.col = cl;
      if (is_real) {
        t.kind = TokKind::kRealLit;
        try {
          t.real_value = std::stod(text);
        } catch (const std::exception&) {
          lex_error(l, cl, "real literal out of range: " + text);
        }
      } else {
        t.kind = TokKind::kIntLit;
        std::int64_t v = 0;
        const auto [p, ec] =
            std::from_chars(text.data(), text.data() + text.size(), v);
        if (ec != std::errc() || p != text.data() + text.size()) {
          lex_error(l, cl, "integer literal out of range: " + text);
        }
        t.int_value = v;
      }
      out.push_back(std::move(t));
      continue;
    }
    // Operators and punctuation.
    const auto two = [&](char second, TokKind with, TokKind without) {
      if (peek(1) == second) {
        push(with, std::string{c, second}, l, cl);
        advance(2);
      } else {
        push(without, std::string{c}, l, cl);
        advance();
      }
    };
    switch (c) {
      case '(': push(TokKind::kLParen, "(", l, cl); advance(); break;
      case ')': push(TokKind::kRParen, ")", l, cl); advance(); break;
      case '{': push(TokKind::kLBrace, "{", l, cl); advance(); break;
      case '}': push(TokKind::kRBrace, "}", l, cl); advance(); break;
      case '[': push(TokKind::kLBracket, "[", l, cl); advance(); break;
      case ']': push(TokKind::kRBracket, "]", l, cl); advance(); break;
      case ',': push(TokKind::kComma, ",", l, cl); advance(); break;
      case ';': push(TokKind::kSemi, ";", l, cl); advance(); break;
      case ':': push(TokKind::kColon, ":", l, cl); advance(); break;
      case '+': push(TokKind::kPlus, "+", l, cl); advance(); break;
      case '-': push(TokKind::kMinus, "-", l, cl); advance(); break;
      case '*': push(TokKind::kStar, "*", l, cl); advance(); break;
      case '/': push(TokKind::kSlash, "/", l, cl); advance(); break;
      case '%': push(TokKind::kPercent, "%", l, cl); advance(); break;
      case '=': two('=', TokKind::kEq, TokKind::kAssign); break;
      case '!': two('=', TokKind::kNe, TokKind::kBang); break;
      case '<': two('=', TokKind::kLe, TokKind::kLt); break;
      case '>': two('=', TokKind::kGe, TokKind::kGt); break;
      case '&':
        if (peek(1) == '&') {
          push(TokKind::kAndAnd, "&&", l, cl);
          advance(2);
        } else {
          lex_error(l, cl, "stray '&' (did you mean '&&'?)");
        }
        break;
      case '|':
        if (peek(1) == '|') {
          push(TokKind::kOrOr, "||", l, cl);
          advance(2);
        } else {
          lex_error(l, cl, "stray '|' (did you mean '||'?)");
        }
        break;
      default:
        lex_error(l, cl, std::string("unexpected character '") + c + "'");
    }
  }
  Token eof;
  eof.kind = TokKind::kEof;
  eof.line = line;
  eof.col = col;
  out.push_back(std::move(eof));
  return out;
}

}  // namespace parmem::frontend
