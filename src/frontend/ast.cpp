#include "frontend/ast.h"

#include "support/diagnostics.h"

namespace parmem::frontend {

const char* type_name(Type t) {
  switch (t) {
    case Type::kInt: return "int";
    case Type::kReal: return "real";
    case Type::kVoid: return "void";
  }
  PARMEM_UNREACHABLE("bad type");
}

const Func* Program::main() const {
  for (const Func& f : funcs) {
    if (f.name == "main") return &f;
  }
  return nullptr;
}

}  // namespace parmem::frontend
