// Hand-written lexer for MC.
#pragma once

#include <string_view>
#include <vector>

#include "frontend/token.h"

namespace parmem::frontend {

/// Tokenizes `source`; throws support::UserError with line/column info on
/// malformed input. The result always ends with a kEof token.
/// `#` starts a comment running to end of line.
/// `source_name`, when non-empty, prefixes diagnostics in the conventional
/// "name:line:col:" form; empty keeps the bare "line:col" legacy format.
std::vector<Token> lex(std::string_view source,
                       std::string_view source_name = {});

}  // namespace parmem::frontend
