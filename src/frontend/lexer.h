// Hand-written lexer for MC.
#pragma once

#include <string_view>
#include <vector>

#include "frontend/token.h"

namespace parmem::frontend {

/// Tokenizes `source`; throws support::UserError with line/column info on
/// malformed input. The result always ends with a kEof token.
/// `#` starts a comment running to end of line.
std::vector<Token> lex(std::string_view source);

}  // namespace parmem::frontend
