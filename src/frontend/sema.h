// Semantic analysis for MC: name resolution, type checking, and the
// no-recursion rule (calls are implemented by inlining in src/lower, so the
// call graph must be acyclic — in keeping with the paper's era, where VLIW
// compilers flattened calls into straight-line regions).
#pragma once

#include "frontend/ast.h"

namespace parmem::frontend {

/// Type-checks `program` in place (annotating Expr::type). Throws
/// support::UserError with a line-tagged message on the first error.
/// Rules:
///  * strict typing: int and real never mix implicitly; convert with
///    int(e) / real(e);
///  * '%' is int-only; comparisons and logical operators yield int;
///  * builtins: sqrt/sin/cos (real->real), abs (int->int or real->real);
///  * 'main' must exist, take no parameters, and return void;
///  * the call graph must be acyclic (no recursion).
void sema(Program& program);

}  // namespace parmem::frontend
