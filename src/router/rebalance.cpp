#include "router/rebalance.h"

#include <cstdio>

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "support/file_io.h"

namespace parmem::router {
namespace {

/// Parses the `<16-hex-key>.res` journal filename (the inverse of
/// service::ResultCache's entry naming). nullopt for anything else —
/// `.atom` files, temp siblings, stray droppings.
std::optional<std::uint64_t> key_of_entry(const std::string& name) {
  if (name.size() != 20 || name.compare(16, 4, ".res") != 0) {
    return std::nullopt;
  }
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const char ch = name[i];
    std::uint64_t d = 0;
    if (ch >= '0' && ch <= '9') {
      d = static_cast<std::uint64_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      d = static_cast<std::uint64_t>(ch - 'a') + 10;
    } else {
      return std::nullopt;
    }
    key = (key << 4) | d;
  }
  return key;
}

std::string worker_dir(const std::string& root, std::uint32_t index) {
  return root + "/w" + std::to_string(index);
}

}  // namespace

RebalanceReport migrate_result_shard(const std::string& cache_root,
                                     std::uint32_t failed_index,
                                     const OwnerFn& owner_of) {
  RebalanceReport report;
  const std::string src_dir = worker_dir(cache_root, failed_index);
  std::vector<std::uint32_t> warmed;
  for (const std::string& name : support::list_directory(src_dir)) {
    const auto key = key_of_entry(name);
    if (!key.has_value()) continue;  // not a result entry; leave in place
    const auto owner = owner_of ? owner_of(*key) : std::nullopt;
    if (!owner.has_value() || *owner == failed_index) {
      ++report.skipped_entries;
      continue;
    }
    const std::string dst_dir = worker_dir(cache_root, *owner);
    if (!support::ensure_directory(dst_dir)) {
      ++report.skipped_entries;
      continue;
    }
    const std::string src = src_dir + "/" + name;
    const std::string dst = dst_dir + "/" + name;
    // The per-index dirs share cache_root, so rename(2) is a same-fs
    // atomic move: the entry is always either a complete file in the old
    // shard or a complete file in the new one, never torn — exactly the
    // invariant the warm-load path verifies by checksum.
    if (std::rename(src.c_str(), dst.c_str()) != 0) {
      ++report.skipped_entries;
      continue;
    }
    ++report.migrated_entries;
    warmed.push_back(*owner);
  }
  std::sort(warmed.begin(), warmed.end());
  warmed.erase(std::unique(warmed.begin(), warmed.end()), warmed.end());
  report.warmed_workers = std::move(warmed);
  return report;
}

ShardMigrator cache_dir_migrator(std::string cache_root) {
  return [root = std::move(cache_root)](std::uint32_t failed_index,
                                        const OwnerFn& owner_of) {
    return migrate_result_shard(root, failed_index, owner_of);
  };
}

}  // namespace parmem::router
