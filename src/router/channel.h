// Worker channels: the router's transport + lifecycle handle for one
// parmemd-compatible worker.
//
// A channel is a full-duplex framed byte stream (service/frame.h over one
// end of a socketpair) plus the three lifecycle operations supervision
// needs: stop_input (graceful — the worker sees EOF, drains, and exits),
// kill (crash hammer — the socket is slammed shut and, for a process
// worker, the child is SIGKILLed), and join (reap). Two implementations:
//
//   * spawn_process_worker — fork/execs a parmemd binary with the worker
//     end of the socketpair as its stdin/stdout (parmemd's stdio mode is
//     exactly this protocol), stderr appended to a per-worker log file.
//     This is the production shape and what the chaos CI job SIGKILLs.
//   * spawn_inprocess_worker — a CompileService + service::serve loop on a
//     std::thread behind the same socketpair. No binary path, no fork: the
//     unit tests' and default bench backend. kill() shuts the socket down
//     hard, which is indistinguishable on the wire from a crashed process.
//
// The router never learns which kind it holds — respawn is "make another
// channel with the same worker index", which is also what keeps cache
// affinity: a respawned worker reuses its per-index journal directory.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "service/frame.h"
#include "service/server.h"

namespace parmem::router {

class WorkerChannel {
 public:
  virtual ~WorkerChannel() = default;

  /// The framed duplex stream to the worker. Valid until the channel is
  /// destroyed; reads unblock with EOF after kill().
  virtual service::ByteStream& stream() = 0;

  /// Graceful stop: half-closes the worker's input so it drains queued
  /// work, writes its remaining responses, and exits.
  virtual void stop_input() = 0;

  /// Hard kill: slams the socket shut (and SIGKILLs a process worker).
  /// Pending reads on stream() unblock; in-flight work is lost.
  virtual void kill() = 0;

  /// Reaps the worker. Returns true when it exited cleanly (exit code 0 /
  /// serve loop returned); false after a kill or crash.
  virtual bool join() = 0;

  /// The in-process worker's service, or nullptr for a process worker.
  /// Tests use it to assert on worker-side cache/counter state.
  virtual service::CompileService* service() { return nullptr; }
};

/// Makes a channel for worker `index`, incarnation `incarnation` (0 for
/// the first spawn, bumped per respawn). The factory pins everything that
/// must survive a respawn — binary path, per-index cache directory.
using WorkerFactory = std::function<std::unique_ptr<WorkerChannel>(
    std::uint32_t index, std::uint32_t incarnation)>;

/// fork/execs `argv` (argv[0] is the parmemd binary path) with the worker
/// end of a socketpair as stdin/stdout. When `stderr_path` is non-empty the
/// child's stderr is appended there (both incarnations of a respawned
/// worker share one log). Throws support::UserError when the spawn fails.
std::unique_ptr<WorkerChannel> spawn_process_worker(
    const std::vector<std::string>& argv, const std::string& stderr_path = "");

/// A CompileService + serve loop on a thread behind a socketpair.
std::unique_ptr<WorkerChannel> spawn_inprocess_worker(
    const service::ServiceOptions& opts);

}  // namespace parmem::router
