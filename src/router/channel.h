// Worker channels: the router's transport + lifecycle handle for one
// parmemd-compatible worker.
//
// A channel is a full-duplex framed byte stream (service/frame.h over one
// end of a socketpair) plus the three lifecycle operations supervision
// needs: stop_input (graceful — the worker sees EOF, drains, and exits),
// kill (crash hammer — the socket is slammed shut and, for a process
// worker, the child is SIGKILLed), and join (reap). Two implementations:
//
//   * spawn_process_worker — fork/execs a parmemd binary with the worker
//     end of the socketpair as its stdin/stdout (parmemd's stdio mode is
//     exactly this protocol), stderr appended to a per-worker log file.
//     This is the production shape and what the chaos CI job SIGKILLs.
//   * spawn_inprocess_worker — a CompileService + service::serve loop on a
//     std::thread behind the same socketpair. No binary path, no fork: the
//     unit tests' and default bench backend. kill() shuts the socket down
//     hard, which is indistinguishable on the wire from a crashed process.
//
// The router never learns which kind it holds — respawn is "make another
// channel with the same worker index", which is also what keeps cache
// affinity: a respawned worker reuses its per-index journal directory.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "service/frame.h"
#include "service/server.h"

namespace parmem::router {

class WorkerChannel {
 public:
  virtual ~WorkerChannel() = default;

  /// The framed duplex stream to the worker. Valid until the channel is
  /// destroyed; reads unblock with EOF after kill().
  virtual service::ByteStream& stream() = 0;

  /// Graceful stop: half-closes the worker's input so it drains queued
  /// work, writes its remaining responses, and exits.
  virtual void stop_input() = 0;

  /// Hard kill: slams the socket shut (and SIGKILLs a process worker).
  /// Pending reads on stream() unblock; in-flight work is lost.
  virtual void kill() = 0;

  /// Reaps the worker. Returns true when it exited cleanly (exit code 0 /
  /// serve loop returned); false after a kill or crash.
  virtual bool join() = 0;

  /// The in-process worker's service, or nullptr for a process worker.
  /// Tests use it to assert on worker-side cache/counter state.
  virtual service::CompileService* service() { return nullptr; }
};

/// Makes a channel for worker `index`, incarnation `incarnation` (0 for
/// the first spawn, bumped per respawn). The factory pins everything that
/// must survive a respawn — binary path, per-index cache directory.
using WorkerFactory = std::function<std::unique_ptr<WorkerChannel>(
    std::uint32_t index, std::uint32_t incarnation)>;

/// Tuning for the TCP channel's connect loop. A "spawn" of a TCP worker is
/// a connect: the factory retries refused/timed-out connects with bounded
/// jittered backoff before giving up, and the router's respawn supervision
/// forms the outer reconnect loop on top (so a remote daemon restart is
/// ridden out by exactly the machinery that rides out a local crash).
struct TcpChannelOptions {
  /// Wall-clock budget for one connect attempt.
  std::uint64_t connect_timeout_ms = 2000;
  /// Connect attempts per spawn before the factory fails (>= 1).
  std::uint32_t connect_attempts = 4;
  /// Jittered backoff between attempts (support::backoff_with_jitter_ms,
  /// seeded by the endpoint so distinct workers decorrelate).
  std::uint64_t connect_backoff_base_ms = 20;
  std::uint64_t connect_backoff_cap_ms = 500;
};

/// Connects to a parmemd-compatible daemon at host:port (parmemd
/// --listen-tcp) and wraps the connection as a WorkerChannel. The wire
/// protocol is identical to the socketpair channels — PMF1 frames — so
/// heartbeats, torn-frame detection, and death-sweep re-drive work
/// unchanged over the network. kill() slams the socket shut (the remote
/// daemon survives and the next incarnation reconnects to a warm cache);
/// join() reports clean unless the channel was killed. Throws
/// support::UserError when every connect attempt fails.
std::unique_ptr<WorkerChannel> connect_tcp_worker(
    const std::string& host, std::uint16_t port,
    const TcpChannelOptions& opts = {});

/// An in-process TCP endpoint serving the compile protocol — the
/// test/bench stand-in for a remote parmemd --listen-tcp. One
/// CompileService persists across connections (reconnects find a warm
/// in-memory cache, like a real daemon); connections are served one at a
/// time, mirroring parmemd's sequential accept loop. Port 0 binds an
/// ephemeral port; a fixed port lets a chaos harness "restart the daemon"
/// at the address the router keeps reconnecting to.
class TcpServerHandle {
 public:
  virtual ~TcpServerHandle() = default;
  virtual std::uint16_t port() const = 0;
  virtual service::CompileService* service() = 0;
  /// Forcibly drops the currently served connection (a mid-request cable
  /// pull). The server keeps accepting; a reconnect succeeds.
  virtual void drop_connection() = 0;
  /// Stops accepting and drops any live connection for good — the SIGKILL
  /// analogue for an in-process endpoint. Idempotent.
  virtual void stop() = 0;
};

std::unique_ptr<TcpServerHandle> serve_tcp_inprocess(
    const service::ServiceOptions& opts,
    const std::string& host = "127.0.0.1", std::uint16_t port = 0);

/// fork/execs `argv` (argv[0] is the parmemd binary path) with the worker
/// end of a socketpair as stdin/stdout. When `stderr_path` is non-empty the
/// child's stderr is appended there (both incarnations of a respawned
/// worker share one log). Throws support::UserError when the spawn fails.
std::unique_ptr<WorkerChannel> spawn_process_worker(
    const std::vector<std::string>& argv, const std::string& stderr_path = "");

/// A CompileService + serve loop on a thread behind a socketpair.
std::unique_ptr<WorkerChannel> spawn_inprocess_worker(
    const service::ServiceOptions& opts);

}  // namespace parmem::router
