#include "router/router.h"

#include <algorithm>
#include <utility>

#include "service/server.h"
#include "support/diagnostics.h"
#include "support/fault_injection.h"
#include "support/rng.h"

namespace parmem::router {

using Clock = std::chrono::steady_clock;

namespace {

std::chrono::milliseconds ms(std::uint64_t v) {
  return std::chrono::milliseconds(static_cast<std::int64_t>(v));
}

std::uint64_t elapsed_ms(Clock::time_point from, Clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(to - from)
          .count());
}

/// The liveness probe: the smallest well-formed compile request. Any
/// terminal status proves the worker's frame loop and service are alive;
/// after the first round trip it is a result-cache hit on every worker.
service::CompileRequest heartbeat_request(std::uint64_t deadline_ms) {
  service::CompileRequest req;
  req.kind = service::RequestKind::kStream;
  req.module_count = 2;
  req.fu_count = 2;
  req.deadline_ms = deadline_ms;
  req.body = "stream 2\ntuple 0 1\n";
  return req;
}

}  // namespace

WorkerRead read_worker_response(service::ByteStream& in,
                                service::CompileResponse& resp,
                                std::string* error) {
  std::string payload;
  try {
    if (!service::read_frame(in, payload)) return WorkerRead::kEof;
  } catch (const std::exception& e) {
    if (error != nullptr) *error = std::string("frame: ") + e.what();
    return WorkerRead::kError;
  }
  try {
    resp = service::parse_response(payload);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = std::string("payload: ") + e.what();
    return WorkerRead::kError;
  }
  return WorkerRead::kResponse;
}

Router::Router(RouterOptions opts, WorkerFactory factory)
    : opts_(std::move(opts)),
      ring_(opts_.workers, opts_.virtual_nodes),
      factory_(std::move(factory)) {
  PARMEM_CHECK(opts_.workers > 0, "router needs at least one worker");
  PARMEM_CHECK(opts_.inflight_high > 0,
               "router in-flight high watermark must be positive");
  PARMEM_CHECK(opts_.retry.max_attempts > 0,
               "router retry policy needs at least one attempt");
  if (opts_.inflight_low == 0 || opts_.inflight_low >= opts_.inflight_high) {
    opts_.inflight_low = opts_.inflight_high / 2;
  }

  slots_.reserve(opts_.workers);
  for (std::size_t w = 0; w < opts_.workers; ++w) {
    auto slot = std::make_unique<Slot>();
    slot->index = static_cast<std::uint32_t>(w);
    slot->inflight_gauge = "route.w" + std::to_string(w) + ".inflight";
    if constexpr (telemetry::kEnabled) {
      slot->gauge_metric =
          &telemetry::Registry::instance().gauge(slot->inflight_gauge.c_str());
    }
    slots_.push_back(std::move(slot));
  }
  for (std::size_t w = 0; w < opts_.workers; ++w) {
    if (!spawn_slot(*slots_[w])) {
      for (std::size_t j = 0; j < w; ++j) teardown_slot(*slots_[j], false);
      throw support::UserError("initial spawn of router worker " +
                               std::to_string(w) + " failed");
    }
  }
  supervisor_ = std::thread(&Router::supervisor_loop, this);
}

Router::~Router() { drain(); }

void Router::bump(std::uint64_t Counters::* field, std::uint64_t delta) {
  std::lock_guard<std::mutex> lk(counters_mu_);
  counters_.*field += delta;
}

Router::Counters Router::counters() const {
  std::lock_guard<std::mutex> lk(counters_mu_);
  return counters_;
}

std::vector<Router::WorkerInfo> Router::workers() const {
  std::vector<WorkerInfo> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lk(slot->mu);
    WorkerInfo info;
    info.index = slot->index;
    info.state = slot->state;
    info.incarnation = slot->incarnation;
    info.inflight = slot->inflight;
    info.saturated = slot->saturated;
    info.routed = slot->routed;
    info.responses = slot->responses;
    out.push_back(info);
  }
  return out;
}

std::size_t Router::alive_workers() const {
  std::size_t n = 0;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lk(slot->mu);
    if (slot->state == WorkerState::kUp) ++n;
  }
  return n;
}

std::size_t Router::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_count_;
}

std::vector<std::uint32_t> Router::ring_workers() const {
  std::lock_guard<std::mutex> lk(ring_mu_);
  std::vector<std::uint32_t> out;
  out.reserve(slots_.size());
  for (std::uint32_t w = 0; w < slots_.size(); ++w) {
    if (ring_.contains(w)) out.push_back(w);
  }
  return out;
}

std::optional<std::uint32_t> Router::owner_of(std::uint64_t key) const {
  std::lock_guard<std::mutex> lk(ring_mu_);
  return ring_.owner(key);
}

std::uint64_t Router::ring_digest() const {
  std::lock_guard<std::mutex> lk(ring_mu_);
  std::string owners;
  owners.reserve(4096);
  for (std::uint64_t key = 0; key < 4096; ++key) {
    const auto owner = ring_.owner(key);
    owners.push_back(owner.has_value() ? static_cast<char>(*owner) : '\xff');
  }
  return service::fnv1a64(owners);
}

void Router::publish_gauge(Slot& slot, std::size_t inflight) {
  if constexpr (telemetry::kEnabled) {
    telemetry::record(*slot.gauge_metric, slot.inflight_gauge.c_str(),
                      static_cast<std::int64_t>(inflight));
  } else {
    (void)slot;
    (void)inflight;
  }
}

void Router::submit(service::CompileRequest req, Callback done) {
  auto p = std::make_unique<Pending>();
  p->key = service::cache_key(req);
  p->req = std::move(req);
  p->done = std::move(done);

  bool shed_now = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    shed_now = draining_;
    ++pending_count_;
  }
  if (shed_now) {
    bump(&Counters::shed);
    PARMEM_COUNTER_ADD("route.shed", 1);
    const std::uint64_t id = p->req.id;
    finish(std::move(p),
           service::error_response(id, service::ResponseStatus::kOverloaded,
                                   "router is draining"));
    return;
  }
  bump(&Counters::accepted);
  PARMEM_COUNTER_ADD("route.submitted", 1);
  route(std::move(p), /*fresh=*/true);
}

std::future<service::CompileResponse> Router::submit(
    service::CompileRequest req) {
  auto promise = std::make_shared<std::promise<service::CompileResponse>>();
  std::future<service::CompileResponse> fut = promise->get_future();
  submit(std::move(req), [promise](const service::CompileResponse& resp) {
    promise->set_value(resp);
  });
  return fut;
}

service::CompileResponse Router::handle(service::CompileRequest req) {
  return submit(std::move(req)).get();
}

void Router::enqueue_locked(Slot& slot, std::unique_ptr<Pending> p) {
  const std::uint64_t wire_id = slot.next_wire_id++;
  service::CompileRequest wire_req = p->req;
  wire_req.id = wire_id;
  if (!p->heartbeat) {
    ++slot.inflight;
    ++slot.routed;
    if (slot.inflight >= opts_.inflight_high) slot.saturated = true;
    publish_gauge(slot, slot.inflight);
  }
  slot.outbox.push_back(service::encode_frame(service::format_request(wire_req)));
  slot.wire.emplace(wire_id, std::move(p));
  slot.out_cv.notify_one();
}

void Router::route(std::unique_ptr<Pending> p, bool fresh) {
  ++p->attempts;
  std::vector<std::uint32_t> order;
  {
    std::lock_guard<std::mutex> lk(ring_mu_);
    order = ring_.failover_order(p->key);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    Slot& slot = *slots_[order[i]];
    bool sent = false;
    {
      std::lock_guard<std::mutex> lk(slot.mu);
      if (slot.state != WorkerState::kUp) continue;
      if (slot.saturated) {
        if (slot.inflight <= opts_.inflight_low) {
          slot.saturated = false;
        } else {
          continue;
        }
      }
      if (slot.inflight >= opts_.inflight_high) {
        slot.saturated = true;
        continue;
      }
      enqueue_locked(slot, std::move(p));
      sent = true;
    }
    if (sent) {
      bump(&Counters::routed);
      PARMEM_COUNTER_ADD("route.routed", 1);
      if (i != 0) {
        bump(&Counters::spilled);
        PARMEM_COUNTER_ADD("route.spilled", 1);
      }
      return;
    }
  }

  // No live worker below its watermark.
  const std::uint64_t id = p->req.id;
  if (fresh) {
    bump(&Counters::shed);
    PARMEM_COUNTER_ADD("route.shed", 1);
    finish(std::move(p),
           service::error_response(
               id, service::ResponseStatus::kOverloaded,
               "fleet saturated: no live worker below watermark"));
    return;
  }
  if (p->attempts >= opts_.retry.max_attempts) {
    bump(&Counters::failed);
    PARMEM_COUNTER_ADD("route.failed", 1);
    finish(std::move(p),
           service::error_response(
               id, service::ResponseStatus::kInternalError,
               "worker connection lost; routing attempts exhausted"));
    return;
  }
  defer(std::move(p));
}

void Router::defer(std::unique_ptr<Pending> p) {
  const std::uint64_t backoff =
      service::retry_backoff_ms(opts_.retry, p->attempts, p->key);
  bump(&Counters::retried);
  PARMEM_COUNTER_ADD("route.retried", 1);
  std::lock_guard<std::mutex> lk(mu_);
  retry_.push_back({std::move(p), Clock::now() + ms(backoff)});
  supervisor_cv_.notify_one();
}

void Router::redrive(std::unique_ptr<Pending> p) {
  bump(&Counters::redriven);
  PARMEM_COUNTER_ADD("route.redriven", 1);
  if (p->attempts >= opts_.retry.max_attempts) {
    bump(&Counters::failed);
    PARMEM_COUNTER_ADD("route.failed", 1);
    const std::uint64_t id = p->req.id;
    finish(std::move(p),
           service::error_response(
               id, service::ResponseStatus::kInternalError,
               "worker connection lost; routing attempts exhausted"));
    return;
  }
  defer(std::move(p));
}

void Router::finish(std::unique_ptr<Pending> p,
                    service::CompileResponse resp) {
  // Counter before callback: once a client observes its terminal response,
  // counters().completed already accounts for it. pending_count_ still
  // drops after the callback so drain() can't return mid-callback.
  bump(&Counters::completed);
  if (p->done) p->done(resp);
  {
    std::lock_guard<std::mutex> lk(mu_);
    PARMEM_CHECK(pending_count_ > 0, "router pending count underflow");
    --pending_count_;
  }
  drain_cv_.notify_all();
}

bool Router::spawn_slot(Slot& slot) {
  std::unique_ptr<WorkerChannel> chan;
  try {
    PARMEM_FAULT_POINT("router.spawn", nullptr);
    chan = factory_(slot.index, slot.incarnation);
  } catch (const std::exception&) {
    chan = nullptr;
  }
  if (chan == nullptr) {
    bump(&Counters::spawn_failures);
    PARMEM_COUNTER_ADD("route.spawn_failed", 1);
    return false;
  }
  std::uint32_t inc = 0;
  {
    std::lock_guard<std::mutex> lk(slot.mu);
    slot.chan = std::move(chan);
    slot.state = WorkerState::kUp;
    slot.wire.clear();
    slot.outbox.clear();
    slot.inflight = 0;
    slot.saturated = false;
    slot.writer_stop = false;
    slot.hb_outstanding = false;
    slot.last_beat = Clock::now();
    slot.threads_live = true;
    inc = slot.incarnation;
    publish_gauge(slot, 0);
  }
  slot.reader = std::thread(&Router::reader_loop, this, std::ref(slot), inc);
  slot.writer = std::thread(&Router::writer_loop, this, std::ref(slot), inc);
  return true;
}

void Router::reader_loop(Slot& slot, std::uint32_t incarnation) {
  for (;;) {
    service::CompileResponse resp;
    std::string err;
    WorkerRead r = read_worker_response(slot.chan->stream(), resp, &err);
    if (r == WorkerRead::kResponse) {
      try {
        PARMEM_FAULT_POINT("router.worker_response", nullptr);
      } catch (const std::exception& e) {
        r = WorkerRead::kError;
        err = e.what();
      }
    }
    if (r != WorkerRead::kResponse) {
      if (r == WorkerRead::kError) {
        bump(&Counters::protocol_errors);
        PARMEM_COUNTER_ADD("route.protocol_errors", 1);
      }
      worker_down(slot, incarnation, r == WorkerRead::kEof ? "eof" : err);
      return;
    }

    std::unique_ptr<Pending> p;
    {
      std::lock_guard<std::mutex> lk(slot.mu);
      if (slot.incarnation != incarnation ||
          slot.state != WorkerState::kUp) {
        return;  // swept concurrently; the sweep owns every pending
      }
      const auto it = slot.wire.find(resp.id);
      if (it == slot.wire.end()) {
        if (resp.id == 0) {
          // The worker rejected one of our payloads as malformed — the
          // codec desynced; nothing on this stream can be trusted.
          break;
        }
        bump(&Counters::late_responses);
        PARMEM_COUNTER_ADD("route.late_responses", 1);
        continue;
      }
      p = std::move(it->second);
      slot.wire.erase(it);
      ++slot.responses;
      slot.last_beat = Clock::now();
      slot.failed_spawns = 0;
      if (p->heartbeat) {
        slot.hb_outstanding = false;
      } else {
        PARMEM_CHECK(slot.inflight > 0, "router slot inflight underflow");
        --slot.inflight;
        if (slot.saturated && slot.inflight <= opts_.inflight_low) {
          slot.saturated = false;
        }
        publish_gauge(slot, slot.inflight);
      }
    }
    if (p->heartbeat) {
      bump(&Counters::heartbeats_ok);
      continue;
    }
    resp.id = p->req.id;
    finish(std::move(p), std::move(resp));
  }
  bump(&Counters::protocol_errors);
  PARMEM_COUNTER_ADD("route.protocol_errors", 1);
  worker_down(slot, incarnation, "worker response under id 0: codec desync");
}

void Router::writer_loop(Slot& slot, std::uint32_t incarnation) {
  for (;;) {
    std::string frame;
    {
      std::unique_lock<std::mutex> lk(slot.mu);
      slot.out_cv.wait(lk, [&slot] {
        return slot.writer_stop || !slot.outbox.empty();
      });
      if (slot.writer_stop) return;
      frame = std::move(slot.outbox.front());
      slot.outbox.pop_front();
    }
    try {
      slot.chan->stream().write_all(frame.data(), frame.size());
    } catch (const std::exception& e) {
      worker_down(slot, incarnation, std::string("write: ") + e.what());
      return;
    }
  }
}

void Router::worker_down(Slot& slot, std::uint32_t incarnation,
                         const std::string& reason) {
  std::vector<std::unique_ptr<Pending>> orphans;
  {
    std::lock_guard<std::mutex> lk(slot.mu);
    if (slot.incarnation != incarnation || slot.state != WorkerState::kUp) {
      return;  // another thread already swept this incarnation
    }
    slot.state = WorkerState::kDead;
    slot.writer_stop = true;
    slot.out_cv.notify_all();
    slot.outbox.clear();
    orphans.reserve(slot.wire.size());
    for (auto& [wire_id, p] : slot.wire) {
      if (!p->heartbeat) orphans.push_back(std::move(p));
    }
    slot.wire.clear();
    slot.inflight = 0;
    slot.saturated = false;
    slot.hb_outstanding = false;
    publish_gauge(slot, 0);
    ++slot.failed_spawns;
    if (slot.failed_spawns > opts_.max_respawns) {
      slot.state = WorkerState::kFailed;
    } else {
      slot.respawn_at =
          Clock::now() + ms(support::backoff_with_jitter_ms(
                             opts_.respawn_base_ms, opts_.respawn_cap_ms,
                             slot.failed_spawns, slot.index));
    }
    // Make sure the peer is fully gone so the writer (possibly mid-write)
    // errors out instead of blocking, and a process worker is SIGKILLed.
    slot.chan->kill();
  }
  bool draining = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining = draining_;
    supervisor_cv_.notify_one();
  }
  if (!draining) {
    // The EOF a graceful teardown produces flows through this same sweep;
    // only genuine mid-service deaths should read as worker_down.
    bump(&Counters::worker_down);
    PARMEM_COUNTER_ADD("route.worker_down", 1);
    PARMEM_INSTANT("route.worker_down");
  }
  (void)reason;
  for (auto& p : orphans) redrive(std::move(p));
}

void Router::send_heartbeat_locked(Slot& slot, Clock::time_point now) {
  auto p = std::make_unique<Pending>();
  p->heartbeat = true;
  p->req = heartbeat_request(opts_.heartbeat_timeout_ms);
  p->key = service::cache_key(p->req);
  enqueue_locked(slot, std::move(p));
  slot.hb_outstanding = true;
  slot.hb_sent = now;
  bump(&Counters::heartbeats_sent);
}

void Router::tick_slots(Clock::time_point now) {
  struct Action {
    Slot* slot = nullptr;
    bool join = false;
    bool respawn = false;
    bool rebalance = false;
  };
  std::vector<Action> actions;
  for (const auto& sp : slots_) {
    Slot& slot = *sp;
    std::lock_guard<std::mutex> lk(slot.mu);
    switch (slot.state) {
      case WorkerState::kUp:
        if (opts_.heartbeat_period_ms == 0) break;
        if (slot.hb_outstanding &&
            elapsed_ms(slot.hb_sent, now) >= opts_.heartbeat_timeout_ms) {
          bump(&Counters::heartbeats_missed);
          PARMEM_COUNTER_ADD("route.heartbeats_missed", 1);
          slot.hb_sent = now;  // don't re-kill every tick
          slot.chan->kill();   // reader's EOF runs the death sweep
        } else if (!slot.hb_outstanding &&
                   elapsed_ms(slot.last_beat, now) >=
                       opts_.heartbeat_period_ms) {
          send_heartbeat_locked(slot, now);
        }
        break;
      case WorkerState::kDead:
        actions.push_back({&slot, slot.threads_live,
                           now >= slot.respawn_at, false});
        break;
      case WorkerState::kFailed:
        if (slot.threads_live || !slot.rebalanced) {
          // The rebalance runs once, after the dead incarnation's threads
          // are joined; marking here (under slot.mu) makes it one-shot.
          const bool rebalance = !slot.rebalanced;
          slot.rebalanced = true;
          actions.push_back({&slot, slot.threads_live, false, rebalance});
        }
        break;
    }
  }
  for (const Action& a : actions) {
    if (a.join) join_slot_threads(*a.slot);
    if (a.rebalance) {
      bool draining = false;
      {
        std::lock_guard<std::mutex> lk(mu_);
        draining = draining_;
      }
      if (!draining) rebalance_slot(*a.slot);
    }
    if (!a.respawn) continue;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (draining_) continue;  // drain stops respawning; teardown reaps
    }
    ++a.slot->incarnation;
    if (spawn_slot(*a.slot)) {
      bump(&Counters::respawns);
      PARMEM_COUNTER_ADD("route.respawns", 1);
    } else {
      std::lock_guard<std::mutex> lk(a.slot->mu);
      ++a.slot->failed_spawns;
      if (a.slot->failed_spawns > opts_.max_respawns) {
        a.slot->state = WorkerState::kFailed;
      } else {
        a.slot->respawn_at =
            Clock::now() + ms(support::backoff_with_jitter_ms(
                               opts_.respawn_base_ms, opts_.respawn_cap_ms,
                               a.slot->failed_spawns, a.slot->index));
      }
    }
  }
}

void Router::rebalance_slot(Slot& slot) {
  {
    std::lock_guard<std::mutex> lk(ring_mu_);
    if (!ring_.contains(slot.index)) return;
    ring_.remove_worker(slot.index);
  }
  // From here the failed slot's keyspace deterministically belongs to the
  // survivors: failover_order no longer lists it, and the new owner is the
  // *primary* for those keys (routing there is no longer a spill). The
  // ring transition is a pure function of the surviving member set —
  // identical across runs, pinnable by digest.
  bump(&Counters::rebalanced);
  PARMEM_COUNTER_ADD("route.rebalance.retired", 1);
  PARMEM_INSTANT("route.rebalance.retired");
  if (!opts_.shard_migrator) return;

  const OwnerFn owner_fn = [this](std::uint64_t key) {
    std::lock_guard<std::mutex> lk(ring_mu_);
    return ring_.owner(key);
  };
  RebalanceReport report;
  try {
    report = opts_.shard_migrator(slot.index, owner_fn);
  } catch (const std::exception&) {
    // Migration is best-effort warmth, never correctness: the keyspace has
    // already moved; the successors just warm organically instead.
    PARMEM_COUNTER_ADD("route.rebalance.migrate_failures", 1);
    return;
  }
  if (report.migrated_entries > 0) {
    bump(&Counters::migrated_entries, report.migrated_entries);
    PARMEM_COUNTER_ADD("route.rebalance.migrated", report.migrated_entries);
  }
  if (report.skipped_entries > 0) {
    PARMEM_COUNTER_ADD("route.rebalance.skipped", report.skipped_entries);
  }
  // Recycle each warmed survivor with a hard kill: the ordinary death
  // sweep re-drives its in-flights (exactly-once holds) and the respawn's
  // fresh incarnation warm-loads the merged journal from disk — the same
  // machinery a crash exercises, so warm-restart identity is already
  // covered by the existing byte-identity checks.
  std::uint64_t recycled = 0;
  for (const std::uint32_t w : report.warmed_workers) {
    if (w >= slots_.size() || w == slot.index) continue;
    Slot& s = *slots_[w];
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.state == WorkerState::kUp && s.chan) {
      s.chan->kill();
      ++recycled;
    }
  }
  if (recycled > 0) {
    bump(&Counters::recycled_workers, recycled);
    PARMEM_COUNTER_ADD("route.rebalance.recycled", recycled);
  }
}

void Router::join_slot_threads(Slot& slot) {
  // worker_down already set writer_stop and killed the channel, so both
  // threads are exiting; these joins only wait out their last few lines.
  if (slot.writer.joinable()) slot.writer.join();
  if (slot.reader.joinable()) slot.reader.join();
  std::lock_guard<std::mutex> lk(slot.mu);
  if (slot.chan) slot.chan->join();
  slot.threads_live = false;
}

void Router::teardown_slot(Slot& slot, bool graceful) {
  {
    std::lock_guard<std::mutex> lk(slot.mu);
    slot.writer_stop = true;
    slot.out_cv.notify_all();
  }
  if (slot.writer.joinable()) slot.writer.join();
  if (slot.chan) {
    if (graceful) {
      slot.chan->stop_input();  // worker drains, responds, exits -> EOF
    } else {
      slot.chan->kill();
    }
  }
  if (slot.reader.joinable()) slot.reader.join();
  std::lock_guard<std::mutex> lk(slot.mu);
  if (slot.chan) slot.chan->join();
  slot.threads_live = false;
}

void Router::supervisor_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_supervisor_) {
    const Clock::time_point now = Clock::now();
    std::vector<std::unique_ptr<Pending>> due;
    for (auto it = retry_.begin(); it != retry_.end();) {
      if (it->not_before <= now) {
        due.push_back(std::move(it->pending));
        it = retry_.erase(it);
      } else {
        ++it;
      }
    }
    lk.unlock();
    for (auto& p : due) route(std::move(p), /*fresh=*/false);
    tick_slots(now);
    lk.lock();
    if (stop_supervisor_) break;
    supervisor_cv_.wait_for(lk, ms(opts_.supervisor_poll_ms));
  }
}

void Router::kill_worker(std::uint32_t w) {
  PARMEM_CHECK(w < slots_.size(), "kill_worker index out of range");
  Slot& slot = *slots_[w];
  std::lock_guard<std::mutex> lk(slot.mu);
  if (slot.chan) slot.chan->kill();
}

void Router::drain() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    draining_ = true;
    drain_cv_.wait(lk, [this] { return pending_count_ == 0; });
    if (joined_) return;
    joined_ = true;
    stop_supervisor_ = true;
    supervisor_cv_.notify_all();
  }
  if (supervisor_.joinable()) supervisor_.join();
  for (auto& slot : slots_) teardown_slot(*slot, /*graceful=*/true);
}

}  // namespace parmem::router
