// parmem-router: the sharded front tier over a fleet of parmemd workers.
//
// A Router owns N supervised worker channels (channel.h) and fans client
// requests out with consistent-hash routing (ring.h) keyed by the request's
// cacheable-part hash, so each worker's result/atom caches concentrate on a
// stable shard of the key space — and keep that shard across restarts,
// because a transiently dead worker keeps its ring points (its keys spill
// to successors and come straight back on respawn). Only a *permanent*
// failure (max_respawns exhausted) changes membership: the rebalancer
// retires the failed slot's virtual nodes from the live ring, so its
// keyspace deterministically re-homes to the survivors, and an optional
// ShardMigrator moves the failed slot's on-disk result journal to the new
// owners, which are then recycled so their respawn warm-loads the merged
// journal.
//
// Request lifecycle (DESIGN.md §14):
//
//   submit --> draining? ------------------------------> respond kOverloaded
//          --> walk failover_order(key): first worker that is up and below
//              its in-flight high watermark gets the request (the primary
//              when healthy — anything else counts as a spill)
//            --> no candidate ------------------------->  respond kOverloaded
//          --> frame on the worker's outbox under a fresh wire id (the
//              original id is restored on the way back; cache keys ignore
//              ids, so re-iding never splits a worker's cache)
//   reader --> response frame -------------------------> terminal to client
//          --> EOF / bad frame / bad payload ----------> worker death:
//              every in-flight request for that worker is *re-driven* —
//              re-routed through the retry policy (capped jittered backoff
//              seeded by the cache key) until it lands on a live worker or
//              exhausts its attempts (then kInternalError). The dead worker
//              is respawned with its own bounded jittered backoff; after
//              max_respawns consecutive failures it is marked failed, its
//              virtual nodes are retired from the live ring, and its shard
//              is rebalanced onto the surviving owners (journal migration +
//              successor recycle when a ShardMigrator is configured).
//   supervisor --> heartbeats (a tiny canonical compile request; ANY
//              terminal status counts as a beat — a shedding worker is an
//              overloaded worker, not a dead one) with a hard timeout that
//              kills the channel, funneling slow-death into the same
//              EOF-driven path as a crash.
//
// Exactly-one-terminal-response: a request lives in exactly one place at a
// time — a submitting thread, one worker's wire map, or the retry queue —
// moved as a unique_ptr under the owning lock, and finish() is the only
// call site of the client callback. A worker's terminal response removes
// the request from the wire map before the callback fires; a death sweep
// atomically empties the map before re-driving; a response arriving for a
// wire id that was already swept (the respawn raced an old in-flight
// compile) is counted and dropped, never double-delivered.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "router/channel.h"
#include "router/ring.h"
#include "service/request.h"
#include "service/retry.h"
#include "telemetry/telemetry.h"

namespace parmem::router {

/// Report from a ShardMigrator: how many result-journal entries moved to
/// surviving owners' directories, how many were left behind (unparseable
/// name, ring empty, rename failure), and which workers' journals gained
/// entries — the router recycles those workers so their next incarnation
/// warm-loads the merged journal through the ordinary respawn path.
struct RebalanceReport {
  std::uint64_t migrated_entries = 0;
  std::uint64_t skipped_entries = 0;
  std::vector<std::uint32_t> warmed_workers;
};

/// Maps a cache key to its current live-ring owner (nullopt when every
/// slot has failed). Thread-safe; valid only during the migrator call.
using OwnerFn = std::function<std::optional<std::uint32_t>(std::uint64_t)>;

/// Invoked once per permanently failed slot, after its virtual nodes have
/// been retired from the live ring, from the supervisor thread. Exceptions
/// are swallowed (migration is best-effort; routing correctness never
/// depends on it).
using ShardMigrator = std::function<RebalanceReport(
    std::uint32_t failed_index, const OwnerFn& owner_of)>;

struct RouterOptions {
  std::size_t workers = 2;
  std::size_t virtual_nodes = kDefaultVirtualNodes;
  /// Router-side mirror of parmemd's admission watermarks: a worker with
  /// this many router-tracked in-flight requests stops receiving new ones
  /// (they spill to the next ring node)...
  std::size_t inflight_high = 32;
  /// ...until it drains back to this low watermark (0 = high/2).
  std::size_t inflight_low = 0;
  /// Heartbeat send period (0 disables) and the silence past an outstanding
  /// heartbeat before the worker is declared dead and killed.
  std::uint64_t heartbeat_period_ms = 250;
  std::uint64_t heartbeat_timeout_ms = 5000;
  /// Supervisor scan period (respawns, retries, heartbeats).
  std::uint64_t supervisor_poll_ms = 5;
  /// Re-drive policy for requests orphaned by a worker death: max_attempts
  /// routing attempts per request, backoff between them (jitter seeded by
  /// the cache key — the same schedule parmemd itself uses).
  service::RetryPolicy retry;
  /// Consecutive failed/ crashed spawns before a worker slot is marked
  /// failed for good (its shard then lives with the ring successors).
  std::uint32_t max_respawns = 8;
  std::uint64_t respawn_base_ms = 20;
  std::uint64_t respawn_cap_ms = 2000;
  /// Cache-shard migration hook for the rebalance that follows a permanent
  /// slot failure (see rebalance.h for the on-disk implementation). Unset:
  /// the keyspace still moves to the surviving owners, but their caches
  /// warm organically instead of from the failed slot's journal.
  ShardMigrator shard_migrator;
};

/// Outcome of reading one frame off a worker connection.
enum class WorkerRead : std::uint8_t {
  kResponse,  // a well-formed response was parsed
  kEof,       // clean end of stream
  kError,     // transport/frame/payload failure — the stream is untrusted
};

/// The router's worker-facing codec path, isolated so the fuzz corpus can
/// drive it directly: reads one frame and parses it as a CompileResponse.
/// Never throws — every malformed byte sequence (truncated frame, bad
/// magic, oversize length, garbage payload, response whose body length
/// lies) collapses to kError with a one-line reason in `error`.
WorkerRead read_worker_response(service::ByteStream& in,
                                service::CompileResponse& resp,
                                std::string* error = nullptr);

class Router {
 public:
  using Callback = std::function<void(const service::CompileResponse&)>;

  /// Always-live monotonic counters (like CompileService::Counters, so the
  /// soak and chaos harnesses can assert in any build configuration).
  struct Counters {
    std::uint64_t accepted = 0;      // admitted (not shed at submit)
    std::uint64_t shed = 0;          // kOverloaded terminals from the router
    std::uint64_t routed = 0;        // frames handed to a worker outbox
    std::uint64_t spilled = 0;       // routed to a non-primary worker
    std::uint64_t redriven = 0;      // re-queued by a worker death sweep
    std::uint64_t retried = 0;       // deferred with backoff by the router
    std::uint64_t failed = 0;        // kInternalError terminals (attempts out)
    std::uint64_t worker_down = 0;   // death sweeps
    std::uint64_t respawns = 0;      // successful respawns
    std::uint64_t spawn_failures = 0;
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t heartbeats_ok = 0;
    std::uint64_t heartbeats_missed = 0;  // timeouts that killed a worker
    std::uint64_t late_responses = 0;     // dropped: wire id already swept
    std::uint64_t protocol_errors = 0;    // malformed worker bytes
    std::uint64_t completed = 0;          // terminal responses of any status
    std::uint64_t rebalanced = 0;         // failed slots retired from the ring
    std::uint64_t migrated_entries = 0;   // journal entries moved by migrators
    std::uint64_t recycled_workers = 0;   // successors cycled to warm-load
  };

  enum class WorkerState : std::uint8_t { kUp, kDead, kFailed };

  struct WorkerInfo {
    std::uint32_t index = 0;
    WorkerState state = WorkerState::kDead;
    std::uint32_t incarnation = 0;  // respawn count since construction
    std::size_t inflight = 0;
    bool saturated = false;
    std::uint64_t routed = 0;
    std::uint64_t responses = 0;
  };

  /// Spawns the fleet synchronously via `factory` (throws when an initial
  /// spawn fails). The ring is fixed over workers 0..opts.workers-1.
  Router(RouterOptions opts, WorkerFactory factory);
  ~Router();  // drains

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Asynchronous submit. `done` fires exactly once with the terminal
  /// response — synchronously on the calling thread when shed, otherwise on
  /// a router reader thread.
  void submit(service::CompileRequest req, Callback done);

  /// Future-returning convenience over the callback form.
  std::future<service::CompileResponse> submit(service::CompileRequest req);

  /// Synchronous convenience: submit and wait for the terminal response.
  service::CompileResponse handle(service::CompileRequest req);

  /// Stops admission, waits for every admitted request's terminal response
  /// (re-driving across deaths as usual), then stops workers gracefully.
  /// Idempotent; also run by the destructor.
  void drain();

  /// Chaos hook: hard-kill worker `w`'s channel (SIGKILL for a process
  /// worker). Supervision notices via the reader's EOF and respawns.
  void kill_worker(std::uint32_t w);

  Counters counters() const;
  std::vector<WorkerInfo> workers() const;
  std::size_t alive_workers() const;
  std::size_t pending() const;
  /// Live ring membership: the configured workers minus permanently failed
  /// (retired) slots, in ascending index order.
  std::vector<std::uint32_t> ring_workers() const;
  /// The live-ring primary for a cache key, or nullopt when every slot has
  /// failed.
  std::optional<std::uint32_t> owner_of(std::uint64_t key) const;
  /// FNV-1a digest of the live ring's owner assignment over cache keys
  /// 0..4095 — a pure function of the member set, so a rebalanced ring's
  /// digest is pinnable in tests and identical across runs.
  std::uint64_t ring_digest() const;
  const RouterOptions& options() const { return opts_; }

 private:
  struct Pending {
    service::CompileRequest req;  // original id preserved
    Callback done;
    std::uint64_t key = 0;
    std::uint32_t attempts = 0;  // routing attempts consumed
    bool heartbeat = false;
  };

  struct Slot {
    std::uint32_t index = 0;
    std::string inflight_gauge;  // stable storage for the telemetry name
    telemetry::Metric* gauge_metric = nullptr;

    mutable std::mutex mu;
    WorkerState state = WorkerState::kDead;
    std::unique_ptr<WorkerChannel> chan;
    std::unordered_map<std::uint64_t, std::unique_ptr<Pending>> wire;
    std::uint64_t next_wire_id = 1;
    std::size_t inflight = 0;  // non-heartbeat wire entries
    bool saturated = false;
    std::uint32_t incarnation = 0;
    std::uint32_t failed_spawns = 0;  // consecutive
    std::chrono::steady_clock::time_point respawn_at{};
    bool threads_live = false;
    bool rebalanced = false;  // failed slot already retired from the ring

    bool hb_outstanding = false;
    std::chrono::steady_clock::time_point hb_sent{};
    std::chrono::steady_clock::time_point last_beat{};

    std::deque<std::string> outbox;  // framed request bytes
    std::condition_variable out_cv;
    bool writer_stop = false;
    std::thread reader;
    std::thread writer;

    std::uint64_t routed = 0;
    std::uint64_t responses = 0;
  };

  struct Deferred {
    std::unique_ptr<Pending> pending;
    std::chrono::steady_clock::time_point not_before{};
  };

  void reader_loop(Slot& slot, std::uint32_t incarnation);
  void writer_loop(Slot& slot, std::uint32_t incarnation);
  /// Enqueues one framed request on `slot`'s outbox. Caller holds slot.mu.
  void enqueue_locked(Slot& slot, std::unique_ptr<Pending> p);
  /// Routes a pending to the first eligible worker in ring order. Consumes
  /// one attempt. Falls back to shed / defer / fail per the lifecycle.
  void route(std::unique_ptr<Pending> p, bool fresh);
  void defer(std::unique_ptr<Pending> p);
  void finish(std::unique_ptr<Pending> p, service::CompileResponse resp);
  /// Death sweep: marks the slot dead, drains its wire map, re-drives the
  /// orphaned requests. Idempotent per incarnation.
  void worker_down(Slot& slot, std::uint32_t incarnation,
                   const std::string& reason);
  void redrive(std::unique_ptr<Pending> p);
  /// Spawns (or respawns) a slot's channel + threads. Caller must have
  /// joined any previous incarnation's threads.
  bool spawn_slot(Slot& slot);
  void join_slot_threads(Slot& slot);
  /// Stops a slot for good: writer join, graceful EOF (or kill), reader
  /// join, channel reap.
  void teardown_slot(Slot& slot, bool graceful);
  void supervisor_loop();
  /// Heartbeat + respawn scan; takes each slot's lock briefly, never mu_.
  void tick_slots(std::chrono::steady_clock::time_point now);
  /// Retires a permanently failed slot's virtual nodes from the live ring,
  /// runs the shard migrator, and recycles the warmed successors. Runs on
  /// the supervisor thread, once per failed slot, after its threads are
  /// joined.
  void rebalance_slot(Slot& slot);
  void send_heartbeat_locked(Slot& slot,
                             std::chrono::steady_clock::time_point now);
  void publish_gauge(Slot& slot, std::size_t inflight);
  void bump(std::uint64_t Counters::* field, std::uint64_t delta = 1);

  RouterOptions opts_;
  /// The live ring. Construction populates it with every configured worker;
  /// the only later mutation is rebalance_slot retiring a permanently
  /// failed slot, so lookups take ring_mu_ (leaf lock, held only for the
  /// lookup itself — never while a slot lock or mu_ is wanted).
  mutable std::mutex ring_mu_;
  HashRing ring_;
  WorkerFactory factory_;
  std::vector<std::unique_ptr<Slot>> slots_;

  mutable std::mutex mu_;  // draining flag, retry queue, pending count
  std::condition_variable drain_cv_;
  std::condition_variable supervisor_cv_;
  std::deque<Deferred> retry_;
  std::size_t pending_count_ = 0;
  bool draining_ = false;
  bool stop_supervisor_ = false;
  bool joined_ = false;

  mutable std::mutex counters_mu_;
  Counters counters_;

  std::thread supervisor_;
};

}  // namespace parmem::router
