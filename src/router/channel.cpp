#include "router/channel.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include "service/request.h"
#include "support/diagnostics.h"
#include "support/net.h"
#include "support/rng.h"
#include "telemetry/telemetry.h"

namespace parmem::router {
namespace {

/// Both channel kinds share the socket half the router holds: an FdStream
/// over one fd, shutdown(2) as the kill/stop primitive. shutdown (unlike
/// close) is safe while another thread is blocked in read on the same fd —
/// the reader unblocks with EOF and there is no fd-reuse race.
class SocketHalf {
 public:
  explicit SocketHalf(int fd) : fd_(fd), stream_(fd, fd) {}
  ~SocketHalf() {
    if (fd_ >= 0) ::close(fd_);
  }
  SocketHalf(const SocketHalf&) = delete;
  SocketHalf& operator=(const SocketHalf&) = delete;

  service::ByteStream& stream() { return stream_; }

  void shutdown_write() {
    std::lock_guard<std::mutex> lk(mu_);
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
  }
  void shutdown_both() {
    std::lock_guard<std::mutex> lk(mu_);
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

 private:
  std::mutex mu_;
  int fd_;
  service::FdStream stream_;
};

int make_socketpair(int fds[2]) {
  return ::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds);
}

class ProcessWorker : public WorkerChannel {
 public:
  ProcessWorker(const std::vector<std::string>& argv,
                const std::string& stderr_path) {
    PARMEM_CHECK(!argv.empty(), "process worker needs an argv");
    int fds[2];
    if (make_socketpair(fds) != 0) {
      throw support::UserError(std::string("socketpair failed: ") +
                               std::strerror(errno));
    }
    // Open the log in the parent so a bad path is a clean UserError, not a
    // silent child death.
    int err_fd = -1;
    if (!stderr_path.empty()) {
      err_fd = ::open(stderr_path.c_str(),
                      O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
      if (err_fd < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        throw support::UserError("cannot open worker log " + stderr_path);
      }
    }

    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) {
      cargv.push_back(const_cast<char*>(a.c_str()));
    }
    cargv.push_back(nullptr);

    pid_ = ::fork();
    if (pid_ < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      if (err_fd >= 0) ::close(err_fd);
      throw support::UserError(std::string("fork failed: ") +
                               std::strerror(errno));
    }
    if (pid_ == 0) {
      // Child: only async-signal-safe calls between fork and exec.
      ::dup2(fds[1], STDIN_FILENO);
      ::dup2(fds[1], STDOUT_FILENO);
      if (err_fd >= 0) ::dup2(err_fd, STDERR_FILENO);
      ::execv(cargv[0], cargv.data());
      // exec failed — exit without running any parent-state destructors.
      ::_exit(127);
    }
    ::close(fds[1]);
    if (err_fd >= 0) ::close(err_fd);
    half_ = std::make_unique<SocketHalf>(fds[0]);
  }

  ~ProcessWorker() override {
    kill();
    join();
  }

  service::ByteStream& stream() override { return half_->stream(); }

  void stop_input() override { half_->shutdown_write(); }

  void kill() override {
    half_->shutdown_both();
    std::lock_guard<std::mutex> lk(mu_);
    if (!reaped_ && pid_ > 0) ::kill(pid_, SIGKILL);
  }

  bool join() override {
    std::lock_guard<std::mutex> lk(mu_);
    if (reaped_) return clean_;
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(pid_, &status, 0);
    } while (r < 0 && errno == EINTR);
    reaped_ = true;
    clean_ = r == pid_ && WIFEXITED(status) && WEXITSTATUS(status) == 0;
    return clean_;
  }

 private:
  pid_t pid_ = -1;
  std::unique_ptr<SocketHalf> half_;
  std::mutex mu_;
  bool reaped_ = false;
  bool clean_ = false;
};

class InprocessWorker : public WorkerChannel {
 public:
  explicit InprocessWorker(const service::ServiceOptions& opts) {
    int fds[2];
    if (make_socketpair(fds) != 0) {
      throw support::UserError(std::string("socketpair failed: ") +
                               std::strerror(errno));
    }
    half_ = std::make_unique<SocketHalf>(fds[0]);
    worker_fd_ = fds[1];
    svc_ = std::make_unique<service::CompileService>(opts);
    thread_ = std::thread([this] {
      service::FdStream ws(worker_fd_, worker_fd_);
      try {
        service::serve(ws, *svc_);
        clean_ = true;
      } catch (const std::exception&) {
        // A transport error below serve's own handling: the channel dies,
        // the router's reader sees EOF and supervision takes over.
      }
      svc_->drain();
      // Half-close back to the router so its reader sees EOF after a
      // graceful drain (a process worker gets this for free when the
      // kernel closes the dead child's fds). close() itself waits for the
      // destructor — no fd-reuse race with a concurrent shutdown.
      ::shutdown(worker_fd_, SHUT_RDWR);
    });
  }

  ~InprocessWorker() override {
    kill();
    join();
    if (worker_fd_ >= 0) ::close(worker_fd_);
  }

  service::ByteStream& stream() override { return half_->stream(); }

  void stop_input() override { half_->shutdown_write(); }

  void kill() override { half_->shutdown_both(); }

  bool join() override {
    if (thread_.joinable()) thread_.join();
    return clean_;
  }

  service::CompileService* service() override { return svc_.get(); }

 private:
  std::unique_ptr<SocketHalf> half_;
  int worker_fd_ = -1;
  std::unique_ptr<service::CompileService> svc_;
  std::thread thread_;
  bool clean_ = false;
};

/// A connected TCP socket to a remote daemon, same SocketHalf mechanics as
/// the local channels. There is no process to reap: join() reports clean
/// unless the channel was killed, and kill() only slams the local socket —
/// the remote daemon's fate belongs to whoever runs it.
class TcpWorker : public WorkerChannel {
 public:
  TcpWorker(const std::string& host, std::uint16_t port,
            const TcpChannelOptions& opts) {
    const std::uint32_t attempts =
        opts.connect_attempts == 0 ? 1 : opts.connect_attempts;
    // Seed the inter-attempt jitter by the endpoint so a fleet of workers
    // reconnecting after a shared outage spreads out instead of stampeding.
    const std::uint64_t seed =
        service::fnv1a64(host + ":" + std::to_string(port));
    int fd = -1;
    for (std::uint32_t attempt = 1;; ++attempt) {
      try {
        fd = support::connect_tcp(host, port, opts.connect_timeout_ms);
        break;
      } catch (const support::UserError&) {
        PARMEM_COUNTER_ADD("route.reconnect.failures", 1);
        if (attempt >= attempts) throw;
        const std::uint64_t delay_ms = support::backoff_with_jitter_ms(
            opts.connect_backoff_base_ms, opts.connect_backoff_cap_ms,
            attempt, seed);
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
    }
    PARMEM_COUNTER_ADD("route.reconnect.connected", 1);
    half_ = std::make_unique<SocketHalf>(fd);
  }

  service::ByteStream& stream() override { return half_->stream(); }

  void stop_input() override { half_->shutdown_write(); }

  void kill() override {
    killed_.store(true, std::memory_order_relaxed);
    half_->shutdown_both();
  }

  bool join() override { return !killed_.load(std::memory_order_relaxed); }

 private:
  std::unique_ptr<SocketHalf> half_;
  std::atomic<bool> killed_{false};
};

/// serve_tcp_inprocess: an ephemeral-port accept loop over one persistent
/// CompileService. Sequential accept, like parmemd --listen-tcp: the
/// router holds at most one connection per worker, and a dropped
/// connection must find the *same* service (warm cache) on reconnect.
class InprocessTcpServer : public TcpServerHandle {
 public:
  InprocessTcpServer(const service::ServiceOptions& opts,
                     const std::string& host, std::uint16_t port) {
    listen_fd_ = support::listen_tcp(host, port, &port_);
    if (::pipe2(stop_pipe_, O_CLOEXEC) != 0) {
      const int err = errno;
      ::close(listen_fd_);
      throw support::UserError(std::string("pipe2 failed: ") +
                               std::strerror(err));
    }
    svc_ = std::make_unique<service::CompileService>(opts);
    thread_ = std::thread([this] { accept_loop(); });
  }

  ~InprocessTcpServer() override {
    stop();
    svc_->drain();
    ::close(stop_pipe_[0]);
    ::close(stop_pipe_[1]);
  }

  std::uint16_t port() const override { return port_; }

  service::CompileService* service() override { return svc_.get(); }

  void drop_connection() override {
    std::lock_guard<std::mutex> lk(mu_);
    if (conn_fd_ >= 0) ::shutdown(conn_fd_, SHUT_RDWR);
  }

  void stop() override {
    std::call_once(stop_once_, [this] {
      {
        std::lock_guard<std::mutex> lk(mu_);
        stopped_ = true;
        if (conn_fd_ >= 0) ::shutdown(conn_fd_, SHUT_RDWR);
      }
      const char byte = 0;
      [[maybe_unused]] const ssize_t w = ::write(stop_pipe_[1], &byte, 1);
      if (thread_.joinable()) thread_.join();
      // Close the listener only after the accept loop has exited: from
      // here a connect is refused outright, so a router probing a stopped
      // endpoint fails fast instead of handshaking into a dead backlog.
      ::close(listen_fd_);
      listen_fd_ = -1;
    });
  }

 private:
  void accept_loop() {
    for (;;) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopped_) return;
      }
      pollfd pfds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
      const int pr = ::poll(pfds, 2, -1);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return;
      }
      if ((pfds[1].revents & (POLLIN | POLLERR | POLLHUP)) != 0) return;
      if ((pfds[0].revents & POLLIN) == 0) continue;
      int conn;
      try {
        conn = support::accept_with_retry(listen_fd_);
      } catch (const support::UserError&) {
        return;  // listener torn down
      }
      if (conn < 0) continue;
      support::set_tcp_nodelay(conn);
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopped_) {
          ::close(conn);
          return;
        }
        conn_fd_ = conn;
      }
      service::FdStream cs(conn, conn);
      try {
        service::serve(cs, *svc_);
      } catch (const std::exception&) {
        // Transport death mid-serve: drop the connection, keep accepting.
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        conn_fd_ = -1;
      }
      ::close(conn);
    }
  }

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int stop_pipe_[2] = {-1, -1};
  std::unique_ptr<service::CompileService> svc_;
  std::thread thread_;
  std::once_flag stop_once_;
  std::mutex mu_;
  int conn_fd_ = -1;
  bool stopped_ = false;
};

}  // namespace

std::unique_ptr<WorkerChannel> connect_tcp_worker(
    const std::string& host, std::uint16_t port,
    const TcpChannelOptions& opts) {
  return std::make_unique<TcpWorker>(host, port, opts);
}

std::unique_ptr<TcpServerHandle> serve_tcp_inprocess(
    const service::ServiceOptions& opts, const std::string& host,
    std::uint16_t port) {
  return std::make_unique<InprocessTcpServer>(opts, host, port);
}

std::unique_ptr<WorkerChannel> spawn_process_worker(
    const std::vector<std::string>& argv, const std::string& stderr_path) {
  return std::make_unique<ProcessWorker>(argv, stderr_path);
}

std::unique_ptr<WorkerChannel> spawn_inprocess_worker(
    const service::ServiceOptions& opts) {
  return std::make_unique<InprocessWorker>(opts);
}

}  // namespace parmem::router
