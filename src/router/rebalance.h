// On-disk cache-shard migration for permanently failed workers.
//
// A fleet driven by parmem_router keeps one result-cache journal directory
// per worker index (`<cache_root>/w<i>`), each file named by its cache key
// (`<16-hex-key>.res`, service/cache.h). That naming makes the shard
// re-routable without reading a byte of payload: when worker `i` fails for
// good and the router retires its ring points, every journal entry's new
// home is `owner_of(key)` on the post-retirement ring. migrate_result_shard
// renames the files across (same filesystem — the per-index dirs share a
// root), so the successor's next warm restart loads the merged journal via
// the existing crash-safe load path: corrupt or torn entries are skipped,
// loaded payloads are checksum-verified byte-identical.
//
// Only `.res` entries move. Atom-cache files (`.atom`) are keyed by atom
// content hash, not by request cache key — they cannot be ring-routed, and
// the successor rebuilds them incrementally.
#pragma once

#include <cstdint>
#include <string>

#include "router/router.h"

namespace parmem::router {

/// Moves every parseable `<16-hex-key>.res` entry under
/// `<cache_root>/w<failed_index>` into `<cache_root>/w<owner_of(key)>`.
/// Entries whose key cannot be parsed, whose owner is unknown (empty
/// ring), or whose rename fails are left behind and counted as skipped.
/// Returns the report the router uses to recycle the warmed successors.
/// Never throws.
RebalanceReport migrate_result_shard(const std::string& cache_root,
                                     std::uint32_t failed_index,
                                     const OwnerFn& owner_of);

/// A ShardMigrator over migrate_result_shard for the `<cache_root>/w<i>`
/// layout parmem_router's worker factory uses. Pass as
/// RouterOptions::shard_migrator when the fleet shares `cache_root`.
ShardMigrator cache_dir_migrator(std::string cache_root);

}  // namespace parmem::router
