// Consistent-hash ring for the parmemd worker fleet.
//
// The router keys every request by its cacheable-part hash
// (service::cache_key — FNV-1a over the canonical request encoding with the
// id zeroed), so equal compile inputs always map to the same worker and
// that worker's result/atom caches stay warm. The ring makes the mapping
// survive fleet events:
//
//   * each worker owns `virtual_nodes` points on a 64-bit ring, derived
//     purely from its index — membership is a *set*, never a sequence, so
//     the assignment is byte-identical regardless of join order;
//   * a key's owner is the first point at or clockwise of the key's hash;
//   * failover_order(key) lists every worker exactly once in ring-traversal
//     order from that point — the router sends to the first entry that is
//     alive and below its in-flight high watermark, so a crashed or
//     saturated worker spills deterministically to the same successor every
//     time, and the keys of a respawned worker come straight back to it
//     (its points never moved).
//
// Everything here is a pure function of (worker set, key): no clocks, no
// randomness, no mutation on lookup. The router serializes membership
// changes externally; const lookups are safe to share across threads.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace parmem::router {

/// Virtual points per worker. More points flatten the load split between
/// workers (the classic consistent-hashing variance argument) at the cost
/// of a larger sorted array; 64 keeps the per-worker share within a few
/// percent of uniform for small fleets.
inline constexpr std::size_t kDefaultVirtualNodes = 64;

class HashRing {
 public:
  explicit HashRing(std::size_t virtual_nodes = kDefaultVirtualNodes);

  /// Convenience: a ring over workers 0..worker_count-1.
  HashRing(std::size_t worker_count, std::size_t virtual_nodes);

  /// Adds `worker`'s points to the ring. Idempotent.
  void add_worker(std::uint32_t worker);

  /// Removes `worker`'s points. Removing and re-adding reproduces the
  /// original ring exactly. Idempotent.
  void remove_worker(std::uint32_t worker);

  bool contains(std::uint32_t worker) const;
  std::size_t worker_count() const { return workers_.size(); }
  std::size_t virtual_nodes() const { return virtual_nodes_; }

  /// The ring-primary worker for `key`, or nullopt on an empty ring.
  std::optional<std::uint32_t> owner(std::uint64_t key) const;

  /// Deterministic failover order: every member worker exactly once, the
  /// owner first, then successors in ring-traversal order. Empty on an
  /// empty ring.
  std::vector<std::uint32_t> failover_order(std::uint64_t key) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t worker;
  };

  std::size_t lookup_index(std::uint64_t key) const;

  std::size_t virtual_nodes_;
  std::vector<Point> points_;           // sorted by (hash, worker)
  std::vector<std::uint32_t> workers_;  // sorted member set
};

}  // namespace parmem::router
