#include "router/ring.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace parmem::router {
namespace {

/// SplitMix64 finalizer — decorrelates ring positions from the raw FNV
/// structure of cache keys and from the dense worker/replica integers.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The ring position of (worker, replica) — a pure function of the pair,
/// so a worker's points are identical in every process and every run.
std::uint64_t point_hash(std::uint32_t worker, std::uint32_t replica) {
  return mix64((static_cast<std::uint64_t>(worker) << 32) | replica);
}

std::uint64_t key_hash(std::uint64_t key) { return mix64(key); }

}  // namespace

HashRing::HashRing(std::size_t virtual_nodes)
    : virtual_nodes_(virtual_nodes == 0 ? 1 : virtual_nodes) {}

HashRing::HashRing(std::size_t worker_count, std::size_t virtual_nodes)
    : HashRing(virtual_nodes) {
  for (std::size_t w = 0; w < worker_count; ++w) {
    add_worker(static_cast<std::uint32_t>(w));
  }
}

void HashRing::add_worker(std::uint32_t worker) {
  if (contains(worker)) return;
  workers_.insert(
      std::lower_bound(workers_.begin(), workers_.end(), worker), worker);
  points_.reserve(points_.size() + virtual_nodes_);
  for (std::size_t r = 0; r < virtual_nodes_; ++r) {
    points_.push_back({point_hash(worker, static_cast<std::uint32_t>(r)),
                       worker});
  }
  // Tie order on equal hashes is (hash, worker) so even a (vanishingly
  // unlikely) point collision resolves identically in every build.
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.worker < b.worker;
  });
}

void HashRing::remove_worker(std::uint32_t worker) {
  const auto it = std::lower_bound(workers_.begin(), workers_.end(), worker);
  if (it == workers_.end() || *it != worker) return;
  workers_.erase(it);
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [worker](const Point& p) {
                                 return p.worker == worker;
                               }),
                points_.end());
}

bool HashRing::contains(std::uint32_t worker) const {
  return std::binary_search(workers_.begin(), workers_.end(), worker);
}

std::size_t HashRing::lookup_index(std::uint64_t key) const {
  PARMEM_CHECK(!points_.empty(), "lookup on an empty ring");
  const std::uint64_t h = key_hash(key);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t hash) { return p.hash < hash; });
  // Wrap past the last point back to the first — the ring is circular.
  return it == points_.end() ? 0
                             : static_cast<std::size_t>(it - points_.begin());
}

std::optional<std::uint32_t> HashRing::owner(std::uint64_t key) const {
  if (points_.empty()) return std::nullopt;
  return points_[lookup_index(key)].worker;
}

std::vector<std::uint32_t> HashRing::failover_order(std::uint64_t key) const {
  std::vector<std::uint32_t> order;
  if (points_.empty()) return order;
  order.reserve(workers_.size());
  std::vector<bool> seen(workers_.back() + 1, false);
  const std::size_t start = lookup_index(key);
  for (std::size_t i = 0; i < points_.size() && order.size() < workers_.size();
       ++i) {
    const Point& p = points_[(start + i) % points_.size()];
    if (!seen[p.worker]) {
      seen[p.worker] = true;
      order.push_back(p.worker);
    }
  }
  return order;
}

}  // namespace parmem::router
