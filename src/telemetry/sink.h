// Per-thread lock-free event sinks.
//
// Each thread that emits telemetry owns a ThreadSink: a bounded
// single-producer/single-consumer ring. The owning thread is the only
// producer; the only consumer is TraceSession::take(), which runs after the
// producers have quiesced (or concurrently — the acquire/release head/tail
// protocol keeps it race-free either way). A full ring drops the event and
// counts the drop instead of blocking or reallocating: telemetry must never
// change the timing it is measuring.
//
// Sinks are registered in a process-wide SinkRegistry and live until process
// exit, so events emitted by a pool worker survive the pool's join and are
// still drainable afterwards. The ring buffer itself is allocated lazily on
// first push — threads that register (for lane naming) but never emit while
// a session is active cost ~100 bytes, which matters because the test
// suites create thousands of short-lived pool workers.
//
// This header is intentionally dependency-free and header-only (inline
// globals), so support::ThreadPool can tag its workers without the support
// library depending on the telemetry library.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/event.h"

namespace parmem::telemetry {

class SinkRegistry;

class ThreadSink {
 public:
  /// Events per ring; power of two. 4096 events ≈ 160 KB, allocated only
  /// once the owning thread actually emits.
  static constexpr std::size_t kCapacity = std::size_t{1} << 12;

  /// Producer side; owning thread only.
  void push(const TraceEvent& e) {
    if (buf_ == nullptr) buf_ = std::make_unique<TraceEvent[]>(kCapacity);
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h - tail_.load(std::memory_order_acquire) >= kCapacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    buf_[h & (kCapacity - 1)] = e;
    head_.store(h + 1, std::memory_order_release);
  }

  /// Consumer side: appends everything currently buffered to `out` and
  /// frees the slots.
  void drain(std::vector<TraceEvent>& out) {
    if (buf_ == nullptr) return;
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    std::uint64_t t = tail_.load(std::memory_order_relaxed);
    for (; t != h; ++t) out.push_back(buf_[t & (kCapacity - 1)]);
    tail_.store(t, std::memory_order_release);
  }

  /// Consumer side: discards everything currently buffered.
  void clear() {
    if (buf_ == nullptr) return;
    tail_.store(head_.load(std::memory_order_acquire),
                std::memory_order_release);
  }

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Stable per-sink lane id (registration order); the exporter's `tid`.
  std::uint32_t lane() const { return lane_; }

 private:
  friend class SinkRegistry;
  std::unique_ptr<TraceEvent[]> buf_;  // lazily allocated by push()
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::uint32_t lane_ = 0;
  std::string name_;  // guarded by SinkRegistry::mu_
};

/// Owns every ThreadSink in the process. Registration and naming are
/// mutex-guarded (cold: once per thread); event traffic never touches the
/// registry.
class SinkRegistry {
 public:
  static SinkRegistry& instance() {
    static SinkRegistry r;
    return r;
  }

  ThreadSink& make_sink() {
    std::lock_guard<std::mutex> lk(mu_);
    sinks_.push_back(std::make_unique<ThreadSink>());
    ThreadSink& s = *sinks_.back();
    s.lane_ = static_cast<std::uint32_t>(sinks_.size() - 1);
    s.name_ = "thread-" + std::to_string(s.lane_);
    return s;
  }

  void set_name(ThreadSink& s, std::string name) {
    std::lock_guard<std::mutex> lk(mu_);
    s.name_ = std::move(name);
  }

  std::string name(const ThreadSink& s) const {
    std::lock_guard<std::mutex> lk(mu_);
    return s.name_;
  }

  /// Snapshot of the registered sinks (the sinks themselves are stable —
  /// never deallocated — so the pointers stay valid).
  std::vector<ThreadSink*> sinks() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<ThreadSink*> out;
    out.reserve(sinks_.size());
    for (const auto& s : sinks_) out.push_back(s.get());
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadSink>> sinks_;
};

/// The calling thread's sink, created and registered on first use.
inline ThreadSink& local_sink() {
  thread_local ThreadSink* sink = &SinkRegistry::instance().make_sink();
  return *sink;
}

/// Names the calling thread's trace lane ("main", "worker-3", ...).
inline void set_thread_name(std::string name) {
  if constexpr (kEnabled) {
    SinkRegistry::instance().set_name(local_sink(), std::move(name));
  }
}

/// Session-active flag: spans and counter *events* are recorded only while
/// a TraceSession is running (counters themselves always accumulate when
/// compiled in).
inline std::atomic<bool>& session_active_flag() {
  static std::atomic<bool> active{false};
  return active;
}

inline bool tracing_active() {
  return kEnabled && session_active_flag().load(std::memory_order_relaxed);
}

}  // namespace parmem::telemetry
