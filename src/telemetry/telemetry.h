// Telemetry instrumentation surface: the RAII Span and the PARMEM_* macros.
//
// Include this header at instrumentation sites; include session.h / export.h
// only where sessions are driven (mcc, tests). The macros:
//
//   PARMEM_SPAN("pipeline.parse");          // scoped timer to end of block
//   PARMEM_COUNTER_ADD("assign.copies", n); // monotonic named counter
//   PARMEM_GAUGE_SET("assign.colors", k);   // last-value named gauge
//   PARMEM_INSTANT("assign.backtrack");     // point marker in the trace
//
// Span and instant events are recorded only while a TraceSession is active
// (a relaxed atomic load otherwise); counters and gauges always accumulate
// so per-compile Snapshot deltas work without a session. With
// -DPARMEM_TELEMETRY=OFF every macro expands to `((void)0)` — arguments are
// not evaluated — and `telemetry::kEnabled` is false, which `if constexpr`
// guards use to drop telemetry-only derivation code from the build.
//
// The span/counter taxonomy is documented in DESIGN.md §10.
#pragma once

#include "telemetry/event.h"
#include "telemetry/registry.h"
#include "telemetry/sink.h"

namespace parmem::telemetry {

/// Scoped timer. Captures the start time at construction when a session is
/// active and pushes one kSpan event at destruction. `name` must have
/// static storage duration (pass a string literal).
class Span {
 public:
  explicit Span(const char* name) {
    if (tracing_active()) {
      name_ = name;
      t0_ = now_ns();
    }
  }
  ~Span() {
    if (name_ != nullptr) {
      local_sink().push({EventKind::kSpan, name_, t0_, now_ns(), 0});
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
};

}  // namespace parmem::telemetry

#if PARMEM_TELEMETRY_ENABLED

#define PARMEM_TELEMETRY_CONCAT2(a, b) a##b
#define PARMEM_TELEMETRY_CONCAT(a, b) PARMEM_TELEMETRY_CONCAT2(a, b)

#define PARMEM_SPAN(name)                 \
  ::parmem::telemetry::Span PARMEM_TELEMETRY_CONCAT(parmem_span_, \
                                                    __LINE__)(name)

#define PARMEM_COUNTER_ADD(name, delta)                               \
  do {                                                                \
    static ::parmem::telemetry::Metric& parmem_metric_ref =           \
        ::parmem::telemetry::Registry::instance().counter(name);      \
    ::parmem::telemetry::bump(parmem_metric_ref, name,                \
                              static_cast<std::int64_t>(delta));      \
  } while (0)

#define PARMEM_GAUGE_SET(name, v)                                     \
  do {                                                                \
    static ::parmem::telemetry::Metric& parmem_metric_ref =           \
        ::parmem::telemetry::Registry::instance().gauge(name);        \
    ::parmem::telemetry::record(parmem_metric_ref, name,              \
                                static_cast<std::int64_t>(v));        \
  } while (0)

#define PARMEM_INSTANT(name)                                          \
  do {                                                                \
    if (::parmem::telemetry::tracing_active()) {                      \
      ::parmem::telemetry::local_sink().push(                         \
          {::parmem::telemetry::EventKind::kInstant, name,            \
           ::parmem::telemetry::now_ns(), 0, 0});                     \
    }                                                                 \
  } while (0)

#else  // PARMEM_TELEMETRY_ENABLED == 0: macros vanish, args unevaluated.

#define PARMEM_SPAN(name) ((void)0)
#define PARMEM_COUNTER_ADD(name, delta) ((void)0)
#define PARMEM_GAUGE_SET(name, v) ((void)0)
#define PARMEM_INSTANT(name) ((void)0)

#endif  // PARMEM_TELEMETRY_ENABLED
