// Named metric registry: monotonically increasing counters and last-value
// gauges, plus point-in-time Snapshots of the whole registry.
//
// Metrics are process-wide atomics. The PARMEM_COUNTER_ADD / PARMEM_GAUGE_SET
// macros cache the registry lookup in a function-local static, so a hot call
// site pays one mutex acquisition ever and a relaxed fetch_add per update.
// Unlike span/counter *events* (which need an active TraceSession), metric
// values always accumulate when telemetry is compiled in — that is what lets
// the pipeline attach a per-compile Snapshot delta to its result without any
// session running.
//
// Snapshot::since(before) forms the per-interval view: counters report
// after - before, gauges report their latest value. Note the registry is
// process-global: deltas taken around a single compile are exact when no
// other compile runs concurrently; under compile_batch the per-job deltas
// interleave (snapshot around the whole batch instead).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/event.h"
#include "telemetry/sink.h"

namespace parmem::telemetry {

enum class MetricKind : std::uint8_t { kCounter, kGauge };

class Metric {
 public:
  void add(std::int64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// A point-in-time copy of every registered metric, sorted by name.
struct Snapshot {
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::int64_t value = 0;
  };
  std::vector<Entry> entries;

  const Entry* find(std::string_view name) const {
    const auto it = std::lower_bound(
        entries.begin(), entries.end(), name,
        [](const Entry& e, std::string_view n) { return e.name < n; });
    return it != entries.end() && it->name == name ? &*it : nullptr;
  }
  bool has(std::string_view name) const { return find(name) != nullptr; }
  /// Value of `name`, or 0 when the metric never registered.
  std::int64_t value(std::string_view name) const {
    const Entry* e = find(name);
    return e != nullptr ? e->value : 0;
  }

  /// Interval view: counters become this - before (missing == 0), gauges
  /// keep this snapshot's (latest) value.
  Snapshot since(const Snapshot& before) const {
    Snapshot out;
    out.entries.reserve(entries.size());
    for (const Entry& e : entries) {
      Entry d = e;
      if (e.kind == MetricKind::kCounter) d.value -= before.value(e.name);
      out.entries.push_back(std::move(d));
    }
    return out;
  }
};

class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  Metric& counter(const char* name) {
    return metric(name, MetricKind::kCounter);
  }
  Metric& gauge(const char* name) { return metric(name, MetricKind::kGauge); }

  Snapshot snapshot() const {
    Snapshot s;
    std::lock_guard<std::mutex> lk(mu_);
    s.entries.reserve(metrics_.size());
    for (const auto& [name, slot] : metrics_) {
      s.entries.push_back({name, slot.kind, slot.metric->value()});
    }
    return s;  // std::map iterates sorted — Snapshot::find's invariant
  }

  /// Zeroes every metric (names stay registered). TraceSession::start()
  /// calls this so a session's final values read from zero.
  void reset() {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [name, slot] : metrics_) slot.metric->set(0);
  }

 private:
  struct Slot {
    MetricKind kind;
    std::unique_ptr<Metric> metric;
  };

  Metric& metric(std::string_view name, MetricKind kind) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = metrics_.find(name);
    if (it == metrics_.end()) {
      it = metrics_
               .emplace(std::string(name),
                        Slot{kind, std::make_unique<Metric>()})
               .first;
    }
    return *it->second.metric;
  }

  mutable std::mutex mu_;
  std::map<std::string, Slot, std::less<>> metrics_;
};

/// Counter update + (when a session is active) a sampled counter event so
/// traces render the metric as a time series.
inline void bump(Metric& m, const char* name, std::int64_t delta) {
  m.add(delta);
  if (tracing_active()) {
    local_sink().push(
        {EventKind::kCounter, name, now_ns(), 0, m.value()});
  }
}

inline void record(Metric& m, const char* name, std::int64_t v) {
  m.set(v);
  if (tracing_active()) {
    local_sink().push({EventKind::kCounter, name, now_ns(), 0, v});
  }
}

}  // namespace parmem::telemetry
