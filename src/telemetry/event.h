// Telemetry event model and the compile-time kill switch.
//
// PARMEM_TELEMETRY_ENABLED is injected by CMake (option PARMEM_TELEMETRY,
// default ON). When it is 0, every instrumentation macro in telemetry.h
// expands to nothing, Span never reads the clock, and the only residue in
// the binary is the (never-called) cold-path session/export code — the hot
// paths are byte-for-byte the uninstrumented program.
//
// An event is 40 bytes and carries a `const char*` name: instrumentation
// sites pass string literals, so names need neither copies nor ownership.
#pragma once

#include <chrono>
#include <cstdint>

#ifndef PARMEM_TELEMETRY_ENABLED
#define PARMEM_TELEMETRY_ENABLED 1
#endif

namespace parmem::telemetry {

/// True when the instrumentation macros are compiled in. `if constexpr
/// (kEnabled)` guards telemetry-only computation (e.g. counter inputs that
/// take a loop to derive) so the OFF build carries zero overhead.
inline constexpr bool kEnabled = PARMEM_TELEMETRY_ENABLED != 0;

enum class EventKind : std::uint8_t {
  kSpan,     // a completed scoped timer: [t0_ns, t1_ns]
  kCounter,  // a metric sample at t0_ns with the post-update value
  kInstant,  // a point-in-time marker at t0_ns
};

struct TraceEvent {
  EventKind kind = EventKind::kInstant;
  const char* name = nullptr;  // static storage duration (string literal)
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;     // spans only
  std::int64_t value = 0;      // counter samples only
};

/// Monotonic timestamp. Raw steady_clock nanoseconds; the exporter
/// normalizes to the session start.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace parmem::telemetry
