// Trace exporters: Chrome trace-event JSON and plain-text summaries.
//
// The JSON form loads in chrome://tracing and Perfetto: one lane ("tid")
// per thread that emitted events, "X" complete events for spans, "C"
// counter samples (rendered as tracks), "i" instants, and thread_name
// metadata so atom-parallel runs read as named per-worker lanes.
//
// The text forms feed --stats and the tests: a per-span aggregate table
// (count / total / mean / max wall ms) and a name→value metric table, both
// rendered with support::TextTable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/registry.h"
#include "telemetry/session.h"

namespace parmem::telemetry {

/// Serializes lanes as a Chrome trace-event JSON document. Timestamps are
/// microseconds relative to `t0_ns` (pass TraceSession::start_ns()).
std::string to_chrome_trace(const std::vector<Lane>& lanes,
                            std::uint64_t t0_ns);

/// to_chrome_trace + write to `path`. Returns false when the file cannot
/// be opened.
bool write_chrome_trace(const std::string& path,
                        const std::vector<Lane>& lanes, std::uint64_t t0_ns);

/// Order statistics over a set of durations — the one definition of
/// p50/p99/p999 shared by the phase summary and the service-load bench, so
/// a router SLO quoted from BENCH_service.json and one quoted from --stats
/// are the same number. Percentiles are nearest-rank: the smallest element
/// with at least p% of the sample at or below it (index ceil(p/100*N)-1 of
/// the sorted sample), so every reported value is an observed duration.
struct DurationStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
};

/// Computes DurationStats over `durations_ns` (sorted in place). All-zero
/// on an empty sample.
DurationStats duration_stats(std::vector<std::uint64_t>& durations_ns);

/// Collects the durations of every span named `name` across `lanes`.
std::vector<std::uint64_t> span_durations_ns(const std::vector<Lane>& lanes,
                                             std::string_view name);

/// Aggregates span events by name across all lanes and renders:
///   span | count | total ms | mean ms | p50 ms | p99 ms | p999 ms | max ms
/// sorted by total descending. Lanes with ring-full drops are flagged in a
/// trailing note.
std::string phase_summary(const std::vector<Lane>& lanes);

/// Renders a Snapshot as `metric | kind | value` rows, sorted by name.
std::string counters_table(const Snapshot& snapshot);

}  // namespace parmem::telemetry
