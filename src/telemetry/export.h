// Trace exporters: Chrome trace-event JSON and plain-text summaries.
//
// The JSON form loads in chrome://tracing and Perfetto: one lane ("tid")
// per thread that emitted events, "X" complete events for spans, "C"
// counter samples (rendered as tracks), "i" instants, and thread_name
// metadata so atom-parallel runs read as named per-worker lanes.
//
// The text forms feed --stats and the tests: a per-span aggregate table
// (count / total / mean / max wall ms) and a name→value metric table, both
// rendered with support::TextTable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/registry.h"
#include "telemetry/session.h"

namespace parmem::telemetry {

/// Serializes lanes as a Chrome trace-event JSON document. Timestamps are
/// microseconds relative to `t0_ns` (pass TraceSession::start_ns()).
std::string to_chrome_trace(const std::vector<Lane>& lanes,
                            std::uint64_t t0_ns);

/// to_chrome_trace + write to `path`. Returns false when the file cannot
/// be opened.
bool write_chrome_trace(const std::string& path,
                        const std::vector<Lane>& lanes, std::uint64_t t0_ns);

/// Aggregates span events by name across all lanes and renders:
///   span | count | total ms | mean ms | max ms
/// sorted by total descending. Lanes with ring-full drops are flagged in a
/// trailing note.
std::string phase_summary(const std::vector<Lane>& lanes);

/// Renders a Snapshot as `metric | kind | value` rows, sorted by name.
std::string counters_table(const Snapshot& snapshot);

}  // namespace parmem::telemetry
