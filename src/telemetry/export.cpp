#include "telemetry/export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string_view>

#include "support/json.h"
#include "support/table.h"

namespace parmem::telemetry {

namespace {

double to_us(std::uint64_t ns, std::uint64_t t0_ns) {
  // Events always postdate the session start; guard anyway so a stray
  // pre-start event cannot produce a huge unsigned wrap.
  return ns >= t0_ns ? static_cast<double>(ns - t0_ns) / 1000.0 : 0.0;
}

}  // namespace

std::string to_chrome_trace(const std::vector<Lane>& lanes,
                            std::uint64_t t0_ns) {
  support::JsonWriter w(0);  // compact: traces get large
  w.begin_object();
  w.member("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();

  w.begin_object();
  w.member("ph", "M");
  w.member("name", "process_name");
  w.member("pid", 1);
  w.key("args");
  w.begin_object();
  w.member("name", "parmem");
  w.end_object();
  w.end_object();

  for (const Lane& lane : lanes) {
    w.begin_object();
    w.member("ph", "M");
    w.member("name", "thread_name");
    w.member("pid", 1);
    w.member("tid", lane.id);
    w.key("args");
    w.begin_object();
    w.member("name", lane.name);
    w.end_object();
    w.end_object();
  }

  for (const Lane& lane : lanes) {
    for (const TraceEvent& e : lane.events) {
      w.begin_object();
      switch (e.kind) {
        case EventKind::kSpan:
          w.member("ph", "X");
          w.member("name", e.name);
          w.member("cat", "parmem");
          w.member("pid", 1);
          w.member("tid", lane.id);
          w.member_fixed("ts", to_us(e.t0_ns, t0_ns), 3);
          w.member_fixed("dur", to_us(e.t1_ns, e.t0_ns), 3);
          break;
        case EventKind::kCounter:
          w.member("ph", "C");
          w.member("name", e.name);
          w.member("pid", 1);
          w.member("tid", lane.id);
          w.member_fixed("ts", to_us(e.t0_ns, t0_ns), 3);
          w.key("args");
          w.begin_object();
          w.member("value", e.value);
          w.end_object();
          break;
        case EventKind::kInstant:
          w.member("ph", "i");
          w.member("name", e.name);
          w.member("pid", 1);
          w.member("tid", lane.id);
          w.member_fixed("ts", to_us(e.t0_ns, t0_ns), 3);
          w.member("s", "t");
          break;
      }
      w.end_object();
    }
  }

  w.end_array();
  w.end_object();
  return w.str();
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<Lane>& lanes,
                        std::uint64_t t0_ns) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = to_chrome_trace(lanes, t0_ns);
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

DurationStats duration_stats(std::vector<std::uint64_t>& durations_ns) {
  DurationStats s;
  if (durations_ns.empty()) return s;
  std::sort(durations_ns.begin(), durations_ns.end());
  s.count = durations_ns.size();
  for (const std::uint64_t d : durations_ns) s.total_ns += d;
  s.max_ns = durations_ns.back();
  const auto rank = [&durations_ns](double p) {
    // Nearest rank: index ceil(p * N) - 1, clamped into the sample.
    const double n = static_cast<double>(durations_ns.size());
    std::size_t idx = static_cast<std::size_t>(std::ceil(p * n));
    if (idx > 0) --idx;
    if (idx >= durations_ns.size()) idx = durations_ns.size() - 1;
    return durations_ns[idx];
  };
  s.p50_ns = rank(0.50);
  s.p99_ns = rank(0.99);
  s.p999_ns = rank(0.999);
  return s;
}

std::vector<std::uint64_t> span_durations_ns(const std::vector<Lane>& lanes,
                                             std::string_view name) {
  std::vector<std::uint64_t> out;
  for (const Lane& lane : lanes) {
    for (const TraceEvent& e : lane.events) {
      if (e.kind == EventKind::kSpan && name == e.name) {
        out.push_back(e.t1_ns - e.t0_ns);
      }
    }
  }
  return out;
}

std::string phase_summary(const std::vector<Lane>& lanes) {
  std::map<std::string_view, std::vector<std::uint64_t>> by_name;
  std::uint64_t dropped = 0;
  for (const Lane& lane : lanes) {
    dropped += lane.dropped;
    for (const TraceEvent& e : lane.events) {
      if (e.kind != EventKind::kSpan) continue;
      by_name[e.name].push_back(e.t1_ns - e.t0_ns);
    }
  }

  std::vector<std::pair<std::string_view, DurationStats>> rows;
  rows.reserve(by_name.size());
  for (auto& [name, durations] : by_name) {
    rows.emplace_back(name, duration_stats(durations));
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.total_ns != b.second.total_ns) {
      return a.second.total_ns > b.second.total_ns;
    }
    return a.first < b.first;
  });

  support::TextTable t({"span", "count", "total ms", "mean ms", "p50 ms",
                        "p99 ms", "p999 ms", "max ms"});
  t.set_align(0, support::Align::kLeft);
  const auto fmt_ms = [](std::uint64_t ns) {
    return support::format_fixed(static_cast<double>(ns) / 1e6, 3);
  };
  for (const auto& [name, a] : rows) {
    const double total_ms = static_cast<double>(a.total_ns) / 1e6;
    t.add_row({std::string(name), std::to_string(a.count),
               support::format_fixed(total_ms, 3),
               support::format_fixed(total_ms / static_cast<double>(a.count),
                                     3),
               fmt_ms(a.p50_ns), fmt_ms(a.p99_ns), fmt_ms(a.p999_ns),
               fmt_ms(a.max_ns)});
  }
  std::string out = t.render();
  if (dropped > 0) {
    out += "(" + std::to_string(dropped) +
           " events dropped by full ring buffers)\n";
  }
  return out;
}

std::string counters_table(const Snapshot& snapshot) {
  support::TextTable t({"metric", "kind", "value"});
  t.set_align(0, support::Align::kLeft);
  t.set_align(1, support::Align::kLeft);
  for (const Snapshot::Entry& e : snapshot.entries) {
    t.add_row({e.name, e.kind == MetricKind::kCounter ? "counter" : "gauge",
               std::to_string(e.value)});
  }
  return t.render();
}

}  // namespace parmem::telemetry
