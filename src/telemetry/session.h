// Process-wide trace session: the on/off switch for event recording and the
// drain point that turns per-thread rings into per-lane event lists.
//
// One session exists per process (sinks are process-global); start() zeroes
// the metric registry, clears every ring, and flips the active flag; stop()
// flips it back. take() drains the rings into Lanes — call it after stop(),
// or while only already-quiesced threads have emitted (the SPSC protocol
// makes a concurrent drain race-free, merely incomplete).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/event.h"

namespace parmem::telemetry {

/// Events of one thread, in emission order, with its lane id and name.
struct Lane {
  std::uint32_t id = 0;
  std::string name;
  std::uint64_t dropped = 0;  // ring-full drops over the sink's lifetime
  std::vector<TraceEvent> events;
};

class TraceSession {
 public:
  static TraceSession& global();

  /// Zeroes the metric registry, discards buffered events, names the
  /// calling thread's lane "main" (unless already named), records t0 and
  /// starts recording. No-op storm-proof: calling start() twice restarts.
  void start();

  /// Stops recording. Buffered events stay drainable via take().
  void stop();

  bool active() const;

  /// Drains every sink. Lanes arrive in lane-id order; lanes that never
  /// emitted are omitted. Events keep raw steady_clock timestamps —
  /// exporters subtract start_ns().
  std::vector<Lane> take();

  /// steady_clock ns at the last start().
  std::uint64_t start_ns() const { return t0_; }

 private:
  std::uint64_t t0_ = 0;
};

}  // namespace parmem::telemetry
