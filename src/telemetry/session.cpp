#include "telemetry/session.h"

#include "telemetry/registry.h"
#include "telemetry/sink.h"

namespace parmem::telemetry {

TraceSession& TraceSession::global() {
  static TraceSession s;
  return s;
}

void TraceSession::start() {
  if constexpr (!kEnabled) return;
  SinkRegistry& reg = SinkRegistry::instance();
  // The driving thread usually owns the root spans; give it a stable name
  // unless somebody chose one already.
  ThreadSink& mine = local_sink();
  if (reg.name(mine).rfind("thread-", 0) == 0) reg.set_name(mine, "main");
  Registry::instance().reset();
  for (ThreadSink* s : reg.sinks()) s->clear();
  t0_ = now_ns();
  session_active_flag().store(true, std::memory_order_relaxed);
}

void TraceSession::stop() {
  if constexpr (!kEnabled) return;
  session_active_flag().store(false, std::memory_order_relaxed);
}

bool TraceSession::active() const { return tracing_active(); }

std::vector<Lane> TraceSession::take() {
  std::vector<Lane> lanes;
  if constexpr (!kEnabled) return lanes;
  SinkRegistry& reg = SinkRegistry::instance();
  for (ThreadSink* s : reg.sinks()) {
    Lane lane;
    lane.id = s->lane();
    lane.name = reg.name(*s);
    lane.dropped = s->dropped();
    s->drain(lane.events);
    if (!lane.events.empty()) lanes.push_back(std::move(lane));
  }
  return lanes;
}

}  // namespace parmem::telemetry
