// Compile-service request/response payloads.
//
// A request payload is a line-oriented text header followed by a raw,
// length-prefixed body (MC source for `kind mc`, stream_io text for
// `kind stream`):
//
//   parmem-request 1
//   id 42
//   kind mc
//   k 8
//   fu 8
//   strategy STOR1
//   method hs
//   rename 0
//   deadline_ms 25
//   max_steps 0
//   body 57
//   func main() { ... }
//
// Every header line except the version, `kind` and `body` is optional and
// defaults as shown; unknown keys, repeated keys, and a body whose byte
// count disagrees with the payload are support::UserError — the service
// never guesses at a malformed request.
//
// A response payload mirrors the shape. Everything after the `id` line is
// the *cacheable part*: a pure function of the compile outcome, stored
// verbatim by the result cache and replayed byte-identically on a warm
// restart (the id line is re-attached per request, so two requests with
// identical inputs but different ids share one cache entry).
//
//   parmem-response 1
//   id 42
//   status ok
//   tier heuristic
//   fingerprint 1a2b3c4d5e6f7081
//   diag 0
//   body 112
//   ...
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "assign/assigner.h"

namespace parmem::service {

enum class RequestKind : std::uint8_t { kMc, kStream };
const char* request_kind_name(RequestKind k);

struct CompileRequest {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kMc;
  std::size_t module_count = 8;
  std::size_t fu_count = 8;
  assign::Strategy strategy = assign::Strategy::kStor1;
  assign::DupMethod method = assign::DupMethod::kHittingSet;
  bool rename = false;
  /// Wall-clock deadline for this request; 0 inherits the service default.
  std::uint64_t deadline_ms = 0;
  /// Cooperative step budget; 0 = unlimited.
  std::uint64_t max_steps = 0;
  /// MC source (kind mc) or stream_io text (kind stream).
  std::string body;
};

/// Canonical serialization; parse_request(format_request(r)) == r.
std::string format_request(const CompileRequest& req);

/// Throws support::UserError on any malformed payload.
CompileRequest parse_request(std::string_view payload);

/// Content-hash cache key: FNV-1a 64 over the canonical encoding with the
/// id zeroed, so equal compile inputs share a key regardless of request id.
std::uint64_t cache_key(const CompileRequest& req);

/// Every response status is terminal — a request gets exactly one of these.
enum class ResponseStatus : std::uint8_t {
  kOk = 0,             // compiled at full effort; body holds the artifact
  kDegraded = 1,       // compiled, but the budget forced a degraded tier
  kUserError = 2,      // malformed request payload / source (not retried)
  kInternalError = 3,  // library fault that survived the retry policy
  kOverloaded = 4,     // shed at admission: queue above the high watermark
  kCancelled = 5,      // deadline expired before/while compiling usefully
};
const char* response_status_name(ResponseStatus s);

struct CompileResponse {
  std::uint64_t id = 0;
  ResponseStatus status = ResponseStatus::kInternalError;
  /// assign::tier_name of the result (ok/degraded only, else empty).
  std::string tier;
  /// One-line failure explanation (empty on ok).
  std::string diagnostic;
  /// analysis::compiled_fingerprint of the artifact (ok/degraded only).
  std::uint64_t fingerprint = 0;
  /// Textual compiled artifact (LIW program + placement), empty on failure.
  std::string body;

  bool ok() const {
    return status == ResponseStatus::kOk || status == ResponseStatus::kDegraded;
  }
};

/// Full payload: version line + id line + cacheable_part.
std::string format_response(const CompileResponse& resp);

/// The bytes after the id line — what the result cache stores.
std::string cacheable_part(const CompileResponse& resp);

/// Re-frames a cached part under a new request id. The returned payload is
/// byte-identical to the original response whenever the id matches.
std::string response_from_cache(std::uint64_t id, std::string_view cached);

/// Throws support::UserError on any malformed payload.
CompileResponse parse_response(std::string_view payload);

/// FNV-1a 64 of an arbitrary byte string (the stream-request fingerprint
/// and the cache's entry checksum).
std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace parmem::service
