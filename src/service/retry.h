// Retry policy for compile attempts: what is worth retrying, and when.
//
// The state machine (DESIGN.md §12): every admitted request runs attempts
// until it reaches exactly one terminal status. An attempt's outcome is
// classified as
//
//   kPermanent   — retrying cannot help: malformed input (UserError), a
//                  degradation the request asked for itself (its own
//                  max_steps budget), or a full-effort success;
//   kTransient   — a retry may succeed: injected/real timeouts that left
//                  wall-clock headroom, bad_alloc, internal faults,
//                  watchdog cancellation.
//
// Transient failures retry with capped exponential backoff and
// deterministic jitter (support::backoff_with_jitter_ms seeded by the
// request's cache key, so a given request follows the same schedule every
// run). When attempts run out, the worker escalates to a degraded-tier
// re-submit — one final attempt under a max_steps=1 budget, which trips
// immediately and completes on the cheapest ladder tier — so even a
// persistently faulting request still ends in a terminal response.
#pragma once

#include <cstdint>

namespace parmem::service {

enum class FailureClass : std::uint8_t { kPermanent, kTransient };
const char* failure_class_name(FailureClass c);

struct RetryPolicy {
  /// Total compile attempts per request, the first included (the
  /// degraded-tier parking attempt is extra and never retried).
  std::uint32_t max_attempts = 3;
  std::uint64_t base_backoff_ms = 10;
  std::uint64_t max_backoff_ms = 250;
  /// Minimum wall-clock slack (beyond the next backoff) a deadline must
  /// still have for a degraded result to be worth retrying.
  std::uint64_t min_headroom_ms = 10;
};

/// Backoff before retry number `attempt` (1-based: the wait after the
/// first failed attempt). Deterministic in (policy, attempt, seed).
std::uint64_t retry_backoff_ms(const RetryPolicy& policy,
                               std::uint32_t attempt, std::uint64_t seed);

/// True when another attempt is allowed: the failure is transient and
/// `attempts_done` (completed attempts) is below max_attempts.
bool should_retry(const RetryPolicy& policy, FailureClass failure,
                  std::uint32_t attempts_done);

/// The "budget exhaustion with headroom" test: a degraded result is worth
/// retrying only if, after the backoff, the request's deadline would still
/// have min_headroom_ms left. `remaining_ms` is the wall-clock time to the
/// request deadline (UINT64_MAX when the request has none).
bool degraded_has_headroom(const RetryPolicy& policy, std::uint64_t remaining_ms,
                           std::uint32_t attempts_done, std::uint64_t seed);

}  // namespace parmem::service
