// The compile service: admission control, worker pool, retry/backoff,
// watchdog cancellation, and the crash-safe result cache, behind a single
// submit() call. `serve()` adapts a framed ByteStream (frame.h) onto a
// service instance — that pair is the whole of parmemd.
//
// Lifecycle of a request (DESIGN.md §12):
//
//   submit --> cache hit? ----------------------------> respond (cache_hit)
//          --> draining / queue above high watermark --> respond kOverloaded
//          --> enqueue (accepted)
//   worker --> deadline already gone? ----------------> respond kCancelled
//          --> attempt compile under a per-attempt Budget that inherits the
//              request deadline and is wired to a CancelToken the watchdog
//              can fire
//            --> full-effort success -----------------> respond kOk (cached)
//            --> degraded, user-requested budget -----> respond kDegraded
//            --> degraded, deadline-driven, headroom -> backoff + retry
//            --> degraded, no headroom ---------------> respond kDegraded
//            --> UserError ---------------------------> respond kUserError
//            --> transient fault, attempts left ------> backoff + retry
//            --> transient fault, attempts exhausted -> parking attempt
//                (max_steps=1: completes on the cheapest ladder tier)
//              --> parking attempt also fails --------> respond kInternalError
//
// Every admitted request reaches exactly one terminal respond; the
// callback/future fires exactly once. Admission sheds with hysteresis:
// above `queue_capacity` new requests are rejected until the queue drains
// to `queue_resume`. The watchdog polls in-flight attempts and fires their
// CancelToken at deadline + grace, which trips the attempt's Budget at its
// next poll — workers are cancelled cooperatively, never killed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/atom_cache.h"
#include "service/cache.h"
#include "service/request.h"
#include "service/retry.h"
#include "support/budget.h"

namespace parmem::service {

class ByteStream;

struct ServiceOptions {
  std::size_t workers = 2;
  /// High watermark: a submit that finds this many queued requests is shed
  /// with kOverloaded...
  std::size_t queue_capacity = 64;
  /// ...until the queue drains back to this low watermark (0 = capacity/2).
  std::size_t queue_resume = 0;
  /// Deadline applied to requests that carry none (0 = unlimited).
  std::uint64_t default_deadline_ms = 0;
  /// Watchdog scan period and the grace past a request's deadline before
  /// its CancelToken is fired.
  std::uint64_t watchdog_poll_ms = 2;
  std::uint64_t watchdog_grace_ms = 50;
  RetryPolicy retry;
  /// Result-cache journal directory ("" = memory-only).
  std::string cache_dir;
  /// LRU cap on result-cache entries (0 = unbounded). Evicted entries'
  /// journal files are unlinked.
  std::size_t cache_max_entries = 0;
  /// opts.parallel.threads for each compile (0/1 = serial).
  std::size_t compile_threads = 0;
  /// Admission-time cap on a stream request's declared value count.
  std::uint64_t max_stream_values = std::uint64_t{1} << 20;
  /// Incremental recompilation: keep an atom-granular memo store
  /// (cache::AtomCache, DESIGN.md §13) and let each compile reuse the
  /// journaled per-atom results whose input closure is unchanged. Output
  /// bytes are identical to from-scratch compiles, so the result cache's
  /// byte-identity contract is unaffected.
  bool incremental = false;
  /// Atom-cache journal directory ("" = memory-only; only meaningful with
  /// `incremental`).
  std::string atom_cache_dir;
  /// LRU cap on atom-cache entries (0 = unbounded).
  std::size_t atom_cache_max_entries = 0;
};

class CompileService {
 public:
  /// Monotonic service counters (always live, unlike telemetry, so tests
  /// and the soak harness can assert on them in any build configuration).
  struct Counters {
    std::uint64_t accepted = 0;     // admitted into the queue
    std::uint64_t shed = 0;         // rejected kOverloaded at admission
    std::uint64_t cache_hits = 0;   // served without queueing
    std::uint64_t retried = 0;      // re-enqueued with backoff
    std::uint64_t escalated = 0;    // parked on the degraded final attempt
    std::uint64_t cancelled = 0;    // terminal kCancelled responses
    std::uint64_t watchdog_fired = 0;
    std::uint64_t completed = 0;    // terminal responses of any status
  };

  using Callback = std::function<void(const CompileResponse&)>;

  explicit CompileService(ServiceOptions opts = {});
  ~CompileService();  // drains

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// Asynchronous submit. `done` fires exactly once with the terminal
  /// response — possibly synchronously (cache hit, shed, drain) on the
  /// calling thread, otherwise on a worker thread.
  void submit(CompileRequest req, Callback done);

  /// Future-returning convenience over the callback form.
  std::future<CompileResponse> submit(CompileRequest req);

  /// Synchronous convenience: submit and wait for the terminal response.
  CompileResponse handle(CompileRequest req);

  /// Stops admission, completes every queued and in-flight request (all
  /// terminal responses still fire), joins workers and watchdog.
  /// Idempotent; also run by the destructor.
  void drain();

  std::size_t queue_depth() const;
  std::size_t inflight() const;
  Counters counters() const;
  ResultCache& cache() { return cache_; }
  /// The atom-granular memo store, or null when ServiceOptions::incremental
  /// is off.
  cache::AtomCache* atom_cache() { return atom_cache_.get(); }
  const ServiceOptions& options() const { return opts_; }

 private:
  struct Job {
    CompileRequest req;
    std::uint64_t key = 0;  // cache key, also the backoff jitter seed
    Callback done;
    std::uint32_t attempts = 0;  // completed compile attempts
    bool parked = false;         // on the final degraded parking attempt
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    std::chrono::steady_clock::time_point not_before{};
  };

  /// One in-flight compile attempt, registered with the watchdog.
  struct Inflight {
    support::CancelToken token;
    bool has_cancel_at = false;
    std::chrono::steady_clock::time_point cancel_at{};
    bool fired = false;
  };

  struct AttemptResult {
    enum Kind {
      kSuccess,            // full-effort artifact in resp
      kDegradedRequested,  // degraded by the request's own max_steps
      kDegradedDeadline,   // degraded by the inherited deadline / watchdog
      kUser,               // UserError: permanent
      kTransient,          // bad_alloc / internal fault / injected timeout
    } kind = kTransient;
    CompileResponse resp;  // populated for the first three kinds
    std::string diag;      // failure diagnostic for the last two
  };

  void worker_loop();
  void watchdog_loop();
  std::unique_ptr<Job> pop_ready_job();
  void process(std::unique_ptr<Job> job);
  AttemptResult run_attempt(Job& job, Inflight& inf);
  void requeue(std::unique_ptr<Job> job,
               std::chrono::steady_clock::time_point not_before);
  void finish(std::unique_ptr<Job> job, CompileResponse resp);
  std::uint64_t remaining_deadline_ms(const Job& job) const;
  void register_inflight(Inflight* inf);
  void unregister_inflight(Inflight* inf);
  void publish_queue_depth_locked();

  ServiceOptions opts_;
  ResultCache cache_;
  std::unique_ptr<cache::AtomCache> atom_cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Job>> queue_;
  bool draining_ = false;
  bool shedding_ = false;

  mutable std::mutex inflight_mu_;
  std::condition_variable watchdog_cv_;
  std::vector<Inflight*> inflight_;
  bool stop_watchdog_ = false;

  std::atomic<std::size_t> inflight_count_{0};
  mutable std::mutex counters_mu_;
  Counters counters_;

  std::vector<std::thread> workers_;
  std::thread watchdog_;
  bool joined_ = false;
};

/// Reads framed requests from `stream` until EOF, submitting each to
/// `service` and writing framed responses as they complete (responses may
/// interleave out of request order; match them by id). An unparseable
/// request payload gets a kUserError response under id 0; a malformed
/// *frame* gets one kUserError response and ends the loop — the stream can
/// no longer be trusted to be in sync. Returns the number of responses
/// written. Thread-safe against the service's worker callbacks; waits for
/// every submitted request to reach its terminal response before returning.
std::uint64_t serve(ByteStream& stream, CompileService& service);

/// The asynchronous submit shape shared by CompileService and the router:
/// the callback fires exactly once with the terminal response, possibly on
/// another thread.
using SubmitFn =
    std::function<void(CompileRequest, CompileService::Callback)>;

/// The frame loop of serve() over an arbitrary submit function — parmemd
/// points it at a local CompileService, parmem-router at a worker fleet;
/// the wire behavior (id-0 error responses, malformed-frame shutdown,
/// drain-before-return) is identical by construction.
std::uint64_t serve_frames(ByteStream& stream, const SubmitFn& submit);

/// Builds a minimal terminal response (no artifact) for error paths.
CompileResponse error_response(std::uint64_t id, ResponseStatus status,
                               std::string diagnostic);

}  // namespace parmem::service
