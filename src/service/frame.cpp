#include "service/frame.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include "support/diagnostics.h"

namespace parmem::service {
namespace {

constexpr std::size_t kHeaderBytes = 8;

/// Blocks SIGPIPE on the calling thread for the duration of a write, and
/// consumes any SIGPIPE the write generated before restoring the previous
/// mask. Writing to a peer that vanished (a SIGKILLed worker, a client
/// that hung up) must surface as an EPIPE transport error the caller can
/// catch — never process death. Per-thread masking keeps this local: no
/// global SIG_IGN that would stomp an embedding application's handler.
class ScopedSigpipeBlock {
 public:
  ScopedSigpipeBlock() {
    sigset_t pipe_only;
    sigemptyset(&pipe_only);
    sigaddset(&pipe_only, SIGPIPE);
    armed_ = ::pthread_sigmask(SIG_BLOCK, &pipe_only, &old_mask_) == 0;
  }

  ~ScopedSigpipeBlock() {
    // If the caller had SIGPIPE blocked already, any pending instance is
    // theirs to handle — leave the mask and the pending set alone.
    if (!armed_ || sigismember(&old_mask_, SIGPIPE) == 1) return;
    sigset_t pending;
    sigemptyset(&pending);
    sigpending(&pending);
    if (sigismember(&pending, SIGPIPE) == 1) {
      // A write raised SIGPIPE while blocked; swallow it so restoring the
      // mask doesn't deliver a fatal signal out of nowhere.
      sigset_t pipe_only;
      sigemptyset(&pipe_only);
      sigaddset(&pipe_only, SIGPIPE);
      timespec zero{0, 0};
      int sig;
      do {
        sig = ::sigtimedwait(&pipe_only, nullptr, &zero);
      } while (sig < 0 && errno == EINTR);
    }
    ::pthread_sigmask(SIG_SETMASK, &old_mask_, nullptr);
  }

  ScopedSigpipeBlock(const ScopedSigpipeBlock&) = delete;
  ScopedSigpipeBlock& operator=(const ScopedSigpipeBlock&) = delete;

 private:
  sigset_t old_mask_{};
  bool armed_ = false;
};

void put_u32le(char* out, std::uint32_t v) {
  out[0] = static_cast<char>(v & 0xFF);
  out[1] = static_cast<char>((v >> 8) & 0xFF);
  out[2] = static_cast<char>((v >> 16) & 0xFF);
  out[3] = static_cast<char>((v >> 24) & 0xFF);
}

std::uint32_t get_u32le(const char* in) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

/// Reads exactly `n` bytes. Returns the count actually read (< n only on
/// EOF), so the caller can distinguish boundary EOF from truncation.
std::size_t read_exact(ByteStream& in, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const std::size_t r = in.read_some(buf + got, n - got);
    if (r == 0) break;
    got += r;
  }
  return got;
}

}  // namespace

std::string encode_frame(std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw support::UserError(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the limit " + std::to_string(kMaxFramePayload));
  }
  std::string out;
  out.resize(kHeaderBytes + payload.size());
  put_u32le(out.data(), kFrameMagic);
  put_u32le(out.data() + 4, static_cast<std::uint32_t>(payload.size()));
  std::memcpy(out.data() + kHeaderBytes, payload.data(), payload.size());
  return out;
}

void write_frame(ByteStream& out, std::string_view payload) {
  const std::string frame = encode_frame(payload);
  out.write_all(frame.data(), frame.size());
}

bool read_frame(ByteStream& in, std::string& payload) {
  char header[kHeaderBytes];
  const std::size_t got = read_exact(in, header, kHeaderBytes);
  if (got == 0) return false;  // clean EOF between frames
  if (got < kHeaderBytes) {
    throw support::UserError("truncated frame header (" + std::to_string(got) +
                             " of " + std::to_string(kHeaderBytes) +
                             " bytes before EOF)");
  }
  const std::uint32_t magic = get_u32le(header);
  if (magic != kFrameMagic) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%08X", magic);
    throw support::UserError(std::string("bad frame magic ") + buf +
                             " (expected \"PMF1\")");
  }
  const std::uint32_t len = get_u32le(header + 4);
  if (len > kMaxFramePayload) {
    throw support::UserError("declared frame payload of " +
                             std::to_string(len) + " bytes exceeds the limit " +
                             std::to_string(kMaxFramePayload));
  }
  payload.resize(len);
  const std::size_t body = read_exact(in, payload.data(), len);
  if (body < len) {
    throw support::UserError("truncated frame payload (" +
                             std::to_string(body) + " of " +
                             std::to_string(len) + " bytes before EOF)");
  }
  return true;
}

std::size_t MemoryStream::read_some(char* buf, std::size_t n) {
  const std::size_t avail = input_.size() - pos_;
  const std::size_t take = n < avail ? n : avail;
  std::memcpy(buf, input_.data() + pos_, take);
  pos_ += take;
  return take;
}

void MemoryStream::write_all(const char* buf, std::size_t n) {
  output_.append(buf, n);
}

std::size_t FdStream::read_some(char* buf, std::size_t n) {
  for (;;) {
    if (interrupt_fd_ >= 0) {
      pollfd fds[2] = {{read_fd_, POLLIN, 0}, {interrupt_fd_, POLLIN, 0}};
      const int rc = ::poll(fds, 2, -1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw support::UserError(std::string("poll failed: ") +
                                 std::strerror(errno));
      }
      if ((fds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        return 0;  // shutdown requested: report EOF, drain gracefully
      }
      if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    }
    const ssize_t r = ::read(read_fd_, buf, n);
    if (r >= 0) return static_cast<std::size_t>(r);
    if (errno == EINTR) continue;
    throw support::UserError(std::string("read failed: ") +
                             std::strerror(errno));
  }
}

void FdStream::write_all(const char* buf, std::size_t n) {
  ScopedSigpipeBlock no_sigpipe;
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(write_fd_, buf + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE) {
        throw support::UserError("write failed: peer closed the stream (" +
                                 std::to_string(done) + " of " +
                                 std::to_string(n) + " bytes written)");
      }
      throw support::UserError(std::string("write failed: ") +
                               std::strerror(errno));
    }
    done += static_cast<std::size_t>(w);
  }
}

}  // namespace parmem::service
