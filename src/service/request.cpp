#include "service/request.h"

#include <cstdio>

#include "support/diagnostics.h"

namespace parmem::service {
namespace {

[[noreturn]] void payload_error(const char* what, std::size_t line_no,
                                const std::string& msg) {
  throw support::UserError(std::string(what) + " payload error (line " +
                           std::to_string(line_no) + "): " + msg);
}

/// Line-oriented cursor over a payload. Raw (length-prefixed) segments are
/// consumed byte-exactly and must be followed by a single '\n' separator —
/// the formats stay strict enough to round-trip byte-identically while
/// remaining greppable in a hex dump.
struct Cursor {
  std::string_view text;
  const char* what;
  std::size_t pos = 0;
  std::size_t line_no = 0;

  bool at_end() const { return pos >= text.size(); }

  std::string_view next_line() {
    ++line_no;
    if (at_end()) payload_error(what, line_no, "unexpected end of payload");
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      payload_error(what, line_no, "unterminated line");
    }
    std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  }

  std::string raw_segment(std::size_t n) {
    if (text.size() - pos < n + 1) {
      payload_error(what, line_no,
                    "raw segment of " + std::to_string(n) +
                        " bytes overruns the payload");
    }
    std::string out(text.substr(pos, n));
    pos += n;
    if (text[pos] != '\n') {
      payload_error(what, line_no, "missing newline after raw segment");
    }
    ++pos;
    return out;
  }
};

/// Splits "key value" on the first space; value may be empty.
void split_kv(std::string_view line, std::string_view& key,
              std::string_view& value) {
  const std::size_t sp = line.find(' ');
  if (sp == std::string_view::npos) {
    key = line;
    value = {};
  } else {
    key = line.substr(0, sp);
    value = line.substr(sp + 1);
  }
}

std::uint64_t parse_u64(Cursor& c, std::string_view value,
                        std::string_view key) {
  if (value.empty()) {
    payload_error(c.what, c.line_no,
                  "expected a number after '" + std::string(key) + "'");
  }
  std::uint64_t v = 0;
  for (const char ch : value) {
    if (ch < '0' || ch > '9') {
      payload_error(c.what, c.line_no,
                    "malformed number '" + std::string(value) + "' for '" +
                        std::string(key) + "'");
    }
    const auto d = static_cast<std::uint64_t>(ch - '0');
    if (v > (~std::uint64_t{0} - d) / 10) {
      payload_error(c.what, c.line_no,
                    "number out of range for '" + std::string(key) + "'");
    }
    v = v * 10 + d;
  }
  return v;
}

std::uint64_t parse_hex64(Cursor& c, std::string_view value,
                          std::string_view key) {
  if (value.empty() || value.size() > 16) {
    payload_error(c.what, c.line_no,
                  "expected up to 16 hex digits for '" + std::string(key) +
                      "'");
  }
  std::uint64_t v = 0;
  for (const char ch : value) {
    std::uint64_t d;
    if (ch >= '0' && ch <= '9') d = static_cast<std::uint64_t>(ch - '0');
    else if (ch >= 'a' && ch <= 'f') d = static_cast<std::uint64_t>(ch - 'a') + 10;
    else {
      payload_error(c.what, c.line_no,
                    "malformed hex '" + std::string(value) + "' for '" +
                        std::string(key) + "'");
    }
    v = (v << 4) | d;
  }
  return v;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void append_raw(std::string& out, std::string_view key, std::string_view raw) {
  out.append(key);
  out.push_back(' ');
  out.append(std::to_string(raw.size()));
  out.push_back('\n');
  out.append(raw);
  out.push_back('\n');
}

}  // namespace

const char* request_kind_name(RequestKind k) {
  switch (k) {
    case RequestKind::kMc: return "mc";
    case RequestKind::kStream: return "stream";
  }
  return "?";
}

const char* response_status_name(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kDegraded: return "degraded";
    case ResponseStatus::kUserError: return "user-error";
    case ResponseStatus::kInternalError: return "internal-error";
    case ResponseStatus::kOverloaded: return "overloaded";
    case ResponseStatus::kCancelled: return "cancelled";
  }
  return "?";
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string format_request(const CompileRequest& req) {
  std::string out = "parmem-request 1\n";
  out += "id " + std::to_string(req.id) + '\n';
  out += std::string("kind ") + request_kind_name(req.kind) + '\n';
  out += "k " + std::to_string(req.module_count) + '\n';
  out += "fu " + std::to_string(req.fu_count) + '\n';
  out += std::string("strategy ") + assign::strategy_name(req.strategy) + '\n';
  out += std::string("method ") +
         (req.method == assign::DupMethod::kBacktracking ? "bt" : "hs") + '\n';
  out += std::string("rename ") + (req.rename ? "1" : "0") + '\n';
  out += "deadline_ms " + std::to_string(req.deadline_ms) + '\n';
  out += "max_steps " + std::to_string(req.max_steps) + '\n';
  append_raw(out, "body", req.body);
  return out;
}

CompileRequest parse_request(std::string_view payload) {
  Cursor c{payload, "request"};
  if (c.next_line() != "parmem-request 1") {
    payload_error(c.what, c.line_no,
                  "expected version line 'parmem-request 1'");
  }
  CompileRequest req;
  bool seen[9] = {};
  enum { kId, kKind, kK, kFu, kStrategy, kMethod, kRename, kDeadline, kSteps };
  const auto once = [&](int field, std::string_view key) {
    if (seen[field]) {
      payload_error(c.what, c.line_no,
                    "duplicate field '" + std::string(key) + "'");
    }
    seen[field] = true;
  };
  for (;;) {
    const std::string_view line = c.next_line();
    std::string_view key, value;
    split_kv(line, key, value);
    if (key == "body") {
      const std::uint64_t n = parse_u64(c, value, key);
      req.body = c.raw_segment(static_cast<std::size_t>(n));
      break;
    } else if (key == "id") {
      once(kId, key);
      req.id = parse_u64(c, value, key);
    } else if (key == "kind") {
      once(kKind, key);
      if (value == "mc") req.kind = RequestKind::kMc;
      else if (value == "stream") req.kind = RequestKind::kStream;
      else {
        payload_error(c.what, c.line_no,
                      "unknown kind '" + std::string(value) +
                          "' (expected mc|stream)");
      }
    } else if (key == "k") {
      once(kK, key);
      req.module_count = static_cast<std::size_t>(parse_u64(c, value, key));
    } else if (key == "fu") {
      once(kFu, key);
      req.fu_count = static_cast<std::size_t>(parse_u64(c, value, key));
    } else if (key == "strategy") {
      once(kStrategy, key);
      if (value == "STOR1") req.strategy = assign::Strategy::kStor1;
      else if (value == "STOR2") req.strategy = assign::Strategy::kStor2;
      else if (value == "STOR3") req.strategy = assign::Strategy::kStor3;
      else {
        payload_error(c.what, c.line_no,
                      "unknown strategy '" + std::string(value) + "'");
      }
    } else if (key == "method") {
      once(kMethod, key);
      if (value == "bt") req.method = assign::DupMethod::kBacktracking;
      else if (value == "hs") req.method = assign::DupMethod::kHittingSet;
      else {
        payload_error(c.what, c.line_no,
                      "unknown method '" + std::string(value) +
                          "' (expected bt|hs)");
      }
    } else if (key == "rename") {
      once(kRename, key);
      if (value == "0") req.rename = false;
      else if (value == "1") req.rename = true;
      else {
        payload_error(c.what, c.line_no,
                      "expected 0 or 1 for 'rename'");
      }
    } else if (key == "deadline_ms") {
      once(kDeadline, key);
      req.deadline_ms = parse_u64(c, value, key);
    } else if (key == "max_steps") {
      once(kSteps, key);
      req.max_steps = parse_u64(c, value, key);
    } else {
      payload_error(c.what, c.line_no,
                    "unknown field '" + std::string(key) + "'");
    }
  }
  if (!c.at_end()) {
    payload_error(c.what, c.line_no, "trailing bytes after body");
  }
  return req;
}

std::uint64_t cache_key(const CompileRequest& req) {
  CompileRequest canonical = req;
  canonical.id = 0;
  return fnv1a64(format_request(canonical));
}

std::string cacheable_part(const CompileResponse& resp) {
  std::string out;
  out += std::string("status ") + response_status_name(resp.status) + '\n';
  if (!resp.tier.empty()) out += "tier " + resp.tier + '\n';
  if (resp.ok()) out += "fingerprint " + hex16(resp.fingerprint) + '\n';
  append_raw(out, "diag", resp.diagnostic);
  append_raw(out, "body", resp.body);
  return out;
}

std::string response_from_cache(std::uint64_t id, std::string_view cached) {
  std::string out = "parmem-response 1\nid " + std::to_string(id) + '\n';
  out.append(cached);
  return out;
}

std::string format_response(const CompileResponse& resp) {
  return response_from_cache(resp.id, cacheable_part(resp));
}

CompileResponse parse_response(std::string_view payload) {
  Cursor c{payload, "response"};
  if (c.next_line() != "parmem-response 1") {
    payload_error(c.what, c.line_no,
                  "expected version line 'parmem-response 1'");
  }
  CompileResponse resp;
  {
    std::string_view key, value;
    split_kv(c.next_line(), key, value);
    if (key != "id") payload_error(c.what, c.line_no, "expected 'id'");
    resp.id = parse_u64(c, value, key);
  }
  bool status_seen = false, diag_seen = false;
  for (;;) {
    const std::string_view line = c.next_line();
    std::string_view key, value;
    split_kv(line, key, value);
    if (key == "status") {
      status_seen = true;
      bool known = false;
      for (const auto s :
           {ResponseStatus::kOk, ResponseStatus::kDegraded,
            ResponseStatus::kUserError, ResponseStatus::kInternalError,
            ResponseStatus::kOverloaded, ResponseStatus::kCancelled}) {
        if (value == response_status_name(s)) {
          resp.status = s;
          known = true;
          break;
        }
      }
      if (!known) {
        payload_error(c.what, c.line_no,
                      "unknown status '" + std::string(value) + "'");
      }
    } else if (key == "tier") {
      resp.tier = std::string(value);
    } else if (key == "fingerprint") {
      resp.fingerprint = parse_hex64(c, value, key);
    } else if (key == "diag") {
      diag_seen = true;
      resp.diagnostic =
          c.raw_segment(static_cast<std::size_t>(parse_u64(c, value, key)));
    } else if (key == "body") {
      resp.body =
          c.raw_segment(static_cast<std::size_t>(parse_u64(c, value, key)));
      break;
    } else {
      payload_error(c.what, c.line_no,
                    "unknown field '" + std::string(key) + "'");
    }
  }
  if (!status_seen || !diag_seen) {
    payload_error(c.what, c.line_no, "missing 'status' or 'diag' field");
  }
  if (!c.at_end()) {
    payload_error(c.what, c.line_no, "trailing bytes after body");
  }
  return resp;
}

}  // namespace parmem::service
