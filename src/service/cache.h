// Crash-safe, content-addressed result cache for the compile service.
//
// Key = request cache_key() (FNV-1a over the canonical request encoding
// with the id zeroed); value = the response's cacheable part (request.h) —
// the bytes after the id line, so a hit replays byte-identically under any
// request id.
//
// Persistence is a one-file-per-entry journal under `dir`:
//
//   <dir>/<16-hex-key>.res
//
// written via support::write_file_atomic (write temp sibling, fsync,
// rename). Each file carries a one-line header with the payload length and
// FNV-1a checksum, so a warm restart loads exactly the entries that were
// fully published: a daemon killed mid-store leaves either no file or a
// `.tmp-*` orphan, both ignored on reload — never a torn entry. Corrupt or
// mis-named files are skipped (counted in Stats::load_errors), not fatal:
// the cache is an accelerator, and a damaged journal must degrade to a
// cold start, not a crashed daemon.
//
// Capacity is bounded by `max_entries` (0 = unbounded) with LRU eviction:
// lookups and stores refresh recency, and the journal file of an evicted
// entry is unlinked. On warm restart, recency is rebuilt from file mtimes
// so a restarted daemon evicts the same cold tail a surviving one would.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace parmem::service {

class ResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t store_errors = 0;  // persist failures (entry stays in RAM)
    std::uint64_t loaded = 0;        // entries recovered at construction
    std::uint64_t load_errors = 0;   // corrupt/orphaned files skipped
    std::uint64_t evicted = 0;       // LRU victims dropped (file unlinked)
  };

  /// Memory-only cache when `dir` is empty; otherwise creates `dir` as
  /// needed and warm-loads every valid journal entry (oldest mtime first,
  /// so in-memory recency matches on-disk age). `max_entries` caps the
  /// entry count with LRU eviction, 0 = unbounded.
  explicit ResultCache(std::string dir = "", std::size_t max_entries = 0);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cached response part, or nullopt. Thread-safe.
  std::optional<std::string> lookup(std::uint64_t key);

  /// First-writer-wins insert (a key is only ever stored with one value —
  /// re-serving must stay byte-identical, so later results for the same
  /// key are dropped). Persists to the journal when a dir is configured;
  /// a persist failure keeps the in-memory entry and counts store_errors.
  void store(std::uint64_t key, std::string_view cached_part);

  std::size_t size() const;
  const std::string& dir() const { return dir_; }
  std::size_t max_entries() const { return max_entries_; }
  Stats stats() const;

  /// Journal path for `key` ("" for a memory-only cache). Exposed for the
  /// warm-restart tests.
  std::string entry_path(std::uint64_t key) const;

 private:
  struct Entry {
    std::string payload;
    std::uint64_t seq = 0;  // recency stamp; larger = more recent
  };

  void load_journal();
  /// Moves `it` to the back of the recency order. Caller holds mu_.
  void touch(std::unordered_map<std::uint64_t, Entry>::iterator it);
  /// Evicts LRU entries until size <= max_entries_; returns the journal
  /// paths to unlink. Caller holds mu_.
  std::vector<std::string> evict_locked();

  std::string dir_;
  std::size_t max_entries_ = 0;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::map<std::uint64_t, std::uint64_t> recency_;  // seq -> key, oldest first
  std::uint64_t next_seq_ = 1;
  Stats stats_;
};

}  // namespace parmem::service
