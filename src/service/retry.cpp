#include "service/retry.h"

#include "support/rng.h"

namespace parmem::service {

const char* failure_class_name(FailureClass c) {
  switch (c) {
    case FailureClass::kPermanent: return "permanent";
    case FailureClass::kTransient: return "transient";
  }
  return "?";
}

std::uint64_t retry_backoff_ms(const RetryPolicy& policy,
                               std::uint32_t attempt, std::uint64_t seed) {
  return support::backoff_with_jitter_ms(policy.base_backoff_ms,
                                         policy.max_backoff_ms, attempt, seed);
}

bool should_retry(const RetryPolicy& policy, FailureClass failure,
                  std::uint32_t attempts_done) {
  return failure == FailureClass::kTransient &&
         attempts_done < policy.max_attempts;
}

bool degraded_has_headroom(const RetryPolicy& policy,
                           std::uint64_t remaining_ms,
                           std::uint32_t attempts_done, std::uint64_t seed) {
  if (remaining_ms == ~std::uint64_t{0}) return true;  // no deadline
  // Worst-case backoff (jitter never exceeds the deterministic delay).
  const std::uint64_t backoff =
      retry_backoff_ms(policy, attempts_done, seed);
  return remaining_ms > backoff + policy.min_headroom_ms;
}

}  // namespace parmem::service
