// Length-framed byte transport for the compile service (`parmemd`).
//
// One frame = an 8-byte header — 4-byte magic "PMF1", 4-byte little-endian
// payload length — followed by exactly that many payload bytes. The payload
// is opaque here (request.h defines the request/response payloads); the
// frame layer's whole job is to turn an untrusted byte stream into discrete
// payloads without ever crashing, hanging, or allocating unboundedly:
//
//   * a declared length above kMaxFramePayload is rejected *before* any
//     allocation (a hostile 4 GiB header costs nothing);
//   * EOF exactly on a frame boundary is the clean end-of-stream signal;
//   * EOF anywhere inside a frame (truncated header or payload) and a bad
//     magic are support::UserError — typed, catchable, never UB.
//
// ByteStream abstracts the transport: FdStream serves pipes and unix
// sockets (EINTR-safe, with an optional interrupt fd so SIGTERM can unblock
// a pending read), MemoryStream backs the in-process tests and fuzz corpus.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace parmem::service {

/// Duplex byte stream the frame layer reads/writes. Implementations throw
/// support::UserError on transport failure.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Reads up to `n` bytes into `buf`; returns the count read (>= 1), or 0
  /// on end-of-stream. Blocks until at least one byte or EOF.
  virtual std::size_t read_some(char* buf, std::size_t n) = 0;

  /// Writes all `n` bytes (short writes are retried internally).
  virtual void write_all(const char* buf, std::size_t n) = 0;
};

/// "PMF1" in little-endian byte order.
inline constexpr std::uint32_t kFrameMagic = 0x31464D50u;

/// Hard cap on a single payload (64 MiB) — checked against the declared
/// length before the payload buffer is allocated.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 26;

/// Serializes one frame (header + payload). Throws support::UserError when
/// `payload` exceeds kMaxFramePayload.
std::string encode_frame(std::string_view payload);

/// Writes one frame to `out`.
void write_frame(ByteStream& out, std::string_view payload);

/// Reads one frame from `in` into `payload`. Returns false on a clean EOF
/// at a frame boundary (payload untouched); throws support::UserError on a
/// bad magic, an oversize declared length, or EOF mid-frame.
bool read_frame(ByteStream& in, std::string& payload);

/// In-memory ByteStream: reads consume `input`, writes append to output().
/// The fuzz tests feed it arbitrary byte strings.
class MemoryStream : public ByteStream {
 public:
  explicit MemoryStream(std::string input = "") : input_(std::move(input)) {}

  std::size_t read_some(char* buf, std::size_t n) override;
  void write_all(const char* buf, std::size_t n) override;

  const std::string& output() const { return output_; }

 private:
  std::string input_;
  std::size_t pos_ = 0;
  std::string output_;
};

/// File-descriptor ByteStream for pipes and sockets. Does not own the fds.
/// Writes block SIGPIPE for their duration (per-thread mask, pending signal
/// consumed) so a vanished peer is a catchable UserError transport failure
/// instead of process death — the router supervises crashy workers through
/// exactly this path. When `interrupt_fd` >= 0, a pending read also waits
/// on it; the moment it
/// becomes readable the stream reports EOF — parmemd points it at the
/// SIGTERM self-pipe so shutdown unblocks the frame loop and flows through
/// the ordinary graceful-drain path.
class FdStream : public ByteStream {
 public:
  FdStream(int read_fd, int write_fd, int interrupt_fd = -1)
      : read_fd_(read_fd), write_fd_(write_fd), interrupt_fd_(interrupt_fd) {}

  std::size_t read_some(char* buf, std::size_t n) override;
  void write_all(const char* buf, std::size_t n) override;

 private:
  int read_fd_;
  int write_fd_;
  int interrupt_fd_;
};

}  // namespace parmem::service
