#include "service/server.h"

#include <chrono>
#include <exception>
#include <new>
#include <utility>

#include "analysis/pipeline.h"
#include "assign/verify.h"
#include "ir/stream_io.h"
#include "service/frame.h"
#include "support/diagnostics.h"
#include "support/fault_injection.h"
#include "support/thread_pool.h"
#include "telemetry/telemetry.h"

namespace parmem::service {
namespace {

using Clock = std::chrono::steady_clock;

/// Textual compiled artifact: the final LIW program plus the placement
/// (assign_stream's `value <id>: M<i> ...` lines). Deliberately free of
/// request ids, timings, or anything else non-deterministic — the body is
/// part of the cacheable response and must be a pure function of the
/// compile inputs.
std::string render_placement(const ir::AccessStream& stream,
                             const assign::AssignResult& result) {
  std::string out;
  for (ir::ValueId v = 0; v < stream.value_count; ++v) {
    if (result.placement[v] == 0) continue;
    out += "value " + std::to_string(v) + ":";
    for (const std::uint32_t m : assign::modules_of(result.placement[v])) {
      out += " M" + std::to_string(m);
    }
    if (result.removed[v]) out += "  (duplicated)";
    out += '\n';
  }
  return out;
}

std::string render_mc_artifact(const analysis::Compiled& c) {
  std::string out = c.liw.to_string();
  out += "# placement\n";
  out += render_placement(c.stream, c.assignment);
  return out;
}

std::string render_stream_artifact(const ir::AccessStream& stream,
                                   const assign::AssignResult& result,
                                   const assign::VerifyReport& report) {
  std::string out = "# placement\n";
  out += render_placement(stream, result);
  out += "# values " + std::to_string(result.stats.values_used) + " copies " +
         std::to_string(result.stats.total_copies) + " residual " +
         std::to_string(report.conflicting_tuples.size()) + '\n';
  return out;
}

}  // namespace

CompileResponse error_response(std::uint64_t id, ResponseStatus status,
                               std::string diagnostic) {
  CompileResponse resp;
  resp.id = id;
  resp.status = status;
  resp.diagnostic = std::move(diagnostic);
  return resp;
}

CompileService::CompileService(ServiceOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_dir, opts_.cache_max_entries) {
  if (opts_.incremental) {
    atom_cache_ = std::make_unique<cache::AtomCache>(
        opts_.atom_cache_dir, opts_.atom_cache_max_entries);
  }
  if (opts_.workers == 0) opts_.workers = 1;
  if (opts_.queue_capacity == 0) opts_.queue_capacity = 1;
  if (opts_.queue_resume == 0 || opts_.queue_resume >= opts_.queue_capacity) {
    opts_.queue_resume = opts_.queue_capacity / 2;
  }
  workers_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

CompileService::~CompileService() { drain(); }

void CompileService::drain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (draining_ && joined_) return;
    draining_ = true;
  }
  cv_.notify_all();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (joined_) return;
    joined_ = true;
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    stop_watchdog_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

void CompileService::publish_queue_depth_locked() {
  PARMEM_GAUGE_SET("service.queue_depth",
                   static_cast<std::int64_t>(queue_.size()));
}

void CompileService::submit(CompileRequest req, Callback done) {
  try {
    PARMEM_FAULT_POINT("service.admit", nullptr);
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lk(counters_mu_);
      ++counters_.completed;
    }
    done(error_response(req.id, ResponseStatus::kInternalError, e.what()));
    return;
  }

  const std::uint64_t key = cache_key(req);
  try {
    PARMEM_FAULT_POINT("service.cache_load", nullptr);
    if (const auto hit = cache_.lookup(key)) {
      {
        std::lock_guard<std::mutex> lk(counters_mu_);
        ++counters_.cache_hits;
        ++counters_.completed;
      }
      PARMEM_COUNTER_ADD("service.cache_hit", 1);
      done(parse_response(response_from_cache(req.id, *hit)));
      return;
    }
  } catch (const std::exception&) {
    // An injected cache fault must never lose the request — fall through
    // and compile as if it were a miss.
  }

  auto job = std::make_unique<Job>();
  job->req = std::move(req);
  job->key = key;
  job->done = std::move(done);
  std::uint64_t deadline_ms = job->req.deadline_ms != 0
                                  ? job->req.deadline_ms
                                  : opts_.default_deadline_ms;
  if (deadline_ms != 0) {
    job->has_deadline = true;
    job->deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  }
  job->not_before = Clock::now();

  {
    std::unique_lock<std::mutex> lk(mu_);
    const bool reject_drain = draining_;
    if (!reject_drain) {
      if (shedding_ && queue_.size() <= opts_.queue_resume) shedding_ = false;
      if (!shedding_ && queue_.size() >= opts_.queue_capacity) {
        shedding_ = true;
      }
    }
    if (reject_drain || shedding_) {
      lk.unlock();
      {
        std::lock_guard<std::mutex> clk(counters_mu_);
        ++counters_.shed;
        ++counters_.completed;
      }
      PARMEM_COUNTER_ADD("service.shed", 1);
      job->done(error_response(
          job->req.id, ResponseStatus::kOverloaded,
          reject_drain ? "service is draining"
                       : "queue above the high watermark"));
      return;
    }
    queue_.push_back(std::move(job));
    publish_queue_depth_locked();
  }
  {
    std::lock_guard<std::mutex> lk(counters_mu_);
    ++counters_.accepted;
  }
  PARMEM_COUNTER_ADD("service.accepted", 1);
  cv_.notify_one();
}

std::future<CompileResponse> CompileService::submit(CompileRequest req) {
  auto promise = std::make_shared<std::promise<CompileResponse>>();
  std::future<CompileResponse> fut = promise->get_future();
  submit(std::move(req),
         [promise](const CompileResponse& resp) { promise->set_value(resp); });
  return fut;
}

CompileResponse CompileService::handle(CompileRequest req) {
  return submit(std::move(req)).get();
}

std::size_t CompileService::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

std::size_t CompileService::inflight() const {
  return inflight_count_.load(std::memory_order_relaxed);
}

CompileService::Counters CompileService::counters() const {
  std::lock_guard<std::mutex> lk(counters_mu_);
  return counters_;
}

std::unique_ptr<CompileService::Job> CompileService::pop_ready_job() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    const auto now = Clock::now();
    auto earliest = Clock::time_point::max();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if ((*it)->not_before <= now) {
        std::unique_ptr<Job> job = std::move(*it);
        queue_.erase(it);
        publish_queue_depth_locked();
        if (shedding_ && queue_.size() <= opts_.queue_resume) {
          shedding_ = false;
        }
        return job;
      }
      earliest = std::min(earliest, (*it)->not_before);
    }
    if (queue_.empty()) {
      if (draining_) return nullptr;
      cv_.wait(lk);
    } else {
      // Only backoff-delayed jobs remain; sleep until the first is ready
      // (drain waits too — every admitted request still gets its terminal
      // response).
      cv_.wait_until(lk, earliest);
    }
  }
}

void CompileService::worker_loop() {
  while (auto job = pop_ready_job()) {
    process(std::move(job));
  }
}

void CompileService::register_inflight(Inflight* inf) {
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    inflight_.push_back(inf);
  }
  [[maybe_unused]] const auto n =
      inflight_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  PARMEM_GAUGE_SET("service.inflight", static_cast<std::int64_t>(n));
}

void CompileService::unregister_inflight(Inflight* inf) {
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
      if (*it == inf) {
        inflight_.erase(it);
        break;
      }
    }
    if (inf->fired) {
      std::lock_guard<std::mutex> clk(counters_mu_);
      ++counters_.watchdog_fired;
    }
  }
  [[maybe_unused]] const auto n =
      inflight_count_.fetch_sub(1, std::memory_order_relaxed) - 1;
  PARMEM_GAUGE_SET("service.inflight", static_cast<std::int64_t>(n));
}

void CompileService::watchdog_loop() {
  std::unique_lock<std::mutex> lk(inflight_mu_);
  while (!stop_watchdog_) {
    const auto now = Clock::now();
    for (Inflight* inf : inflight_) {
      if (inf->has_cancel_at && !inf->fired && now >= inf->cancel_at) {
        inf->fired = true;
        inf->token.cancel();
        PARMEM_COUNTER_ADD("service.watchdog_fired", 1);
      }
    }
    watchdog_cv_.wait_for(
        lk, std::chrono::milliseconds(opts_.watchdog_poll_ms));
  }
}

std::uint64_t CompileService::remaining_deadline_ms(const Job& job) const {
  if (!job.has_deadline) return ~std::uint64_t{0};
  const auto now = Clock::now();
  if (now >= job.deadline) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(job.deadline -
                                                            now)
          .count());
}

CompileService::AttemptResult CompileService::run_attempt(Job& job,
                                                          Inflight& inf) {
  AttemptResult out;
  try {
    // Fault probe for the worker itself. An injected kTimeout trips this
    // probe budget — treated exactly like a watchdog cancellation of an
    // attempt that produced nothing.
    support::Budget probe;
    PARMEM_FAULT_POINT("service.worker", &probe);
    if (!probe.ok()) {
      out.kind = AttemptResult::kTransient;
      out.diag = "injected timeout at service.worker";
      return out;
    }

    // The attempt's budget inherits what is left of the request deadline;
    // the parking attempt instead runs under max_steps=1, which trips
    // immediately and completes on the cheapest ladder tier.
    support::BudgetSpec spec;
    if (job.parked) {
      spec.max_steps = 1;
    } else {
      spec.max_steps = job.req.max_steps;
      if (job.has_deadline) {
        const std::uint64_t rem = remaining_deadline_ms(job);
        spec.deadline_ms = rem == 0 ? 1 : rem;
      }
    }

    CompileResponse resp;
    resp.id = job.req.id;
    bool degraded = false;
    if (job.req.kind == RequestKind::kMc) {
      analysis::PipelineOptions popts;
      popts.assign.module_count = job.req.module_count;
      popts.sched.module_count = job.req.module_count;
      popts.sched.fu_count = job.req.fu_count;
      popts.assign.strategy = job.req.strategy;
      popts.assign.method = job.req.method;
      popts.rename = job.req.rename;
      popts.budget = spec;
      popts.parallel.threads = opts_.compile_threads;
      // A fixed source name keeps diagnostics (and so the cacheable bytes)
      // independent of the request id.
      popts.source_name = "<service>";
      // Incremental recompilation: the shared atom cache lets this attempt
      // reuse per-atom results from earlier compiles of similar sources.
      // Replay is byte-identical, so cached responses are unaffected.
      popts.atom_memo = atom_cache_.get();
      analysis::Compiled c = [&] {
        if (opts_.compile_threads > 1) {
          support::ThreadPool pool(opts_.compile_threads);
          return analysis::compile_mc(job.req.body, popts, &pool, &inf.token);
        }
        return analysis::compile_mc(job.req.body, popts, nullptr, &inf.token);
      }();
      resp.tier = assign::tier_name(c.assignment.tier);
      resp.body = render_mc_artifact(c);
      resp.fingerprint = analysis::compiled_fingerprint(c);
      degraded = c.degraded();
    } else {
      const ir::AccessStream stream = ir::parse_stream(
          job.req.body, "<service>", opts_.max_stream_values);
      assign::AssignOptions aopts;
      aopts.module_count = job.req.module_count;
      aopts.strategy = job.req.strategy;
      aopts.method = job.req.method;
      aopts.memo_store = atom_cache_.get();
      support::Budget budget(spec, nullptr, &inf.token);
      if (budget.limited()) aopts.budget = &budget;
      const assign::AssignResult result = assign::assign_modules(stream, aopts);
      const assign::VerifyReport report =
          assign::verify_assignment(stream, result);
      resp.tier = assign::tier_name(result.tier);
      resp.body = render_stream_artifact(stream, result, report);
      resp.fingerprint = fnv1a64(resp.body);
      degraded = result.tier > assign::AssignTier::kHeuristic;
    }

    resp.status = degraded ? ResponseStatus::kDegraded : ResponseStatus::kOk;
    out.resp = std::move(resp);
    if (!degraded) {
      out.kind = AttemptResult::kSuccess;
    } else if (job.parked || job.req.max_steps != 0) {
      out.kind = AttemptResult::kDegradedRequested;
    } else {
      out.kind = AttemptResult::kDegradedDeadline;
    }
    return out;
  } catch (const support::UserError& e) {
    out.kind = AttemptResult::kUser;
    out.diag = e.what();
  } catch (const std::bad_alloc&) {
    out.kind = AttemptResult::kTransient;
    out.diag = "allocation failure during compile";
  } catch (const std::exception& e) {
    out.kind = AttemptResult::kTransient;
    out.diag = e.what();
  }
  return out;
}

void CompileService::requeue(std::unique_ptr<Job> job,
                             Clock::time_point not_before) {
  job->not_before = not_before;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Retries bypass admission control: the request was already accepted
    // and must reach a terminal response even under shedding.
    queue_.push_back(std::move(job));
    publish_queue_depth_locked();
  }
  cv_.notify_one();
}

void CompileService::finish(std::unique_ptr<Job> job, CompileResponse resp) {
  const bool cacheable =
      resp.status == ResponseStatus::kOk ||
      (resp.status == ResponseStatus::kDegraded && job->req.max_steps != 0 &&
       !job->parked);
  if (cacheable) {
    try {
      PARMEM_FAULT_POINT("service.cache_store", nullptr);
      cache_.store(job->key, cacheable_part(resp));
    } catch (const std::exception&) {
      // An injected store fault only costs the cache entry, never the
      // response.
    }
  }
  {
    std::lock_guard<std::mutex> lk(counters_mu_);
    ++counters_.completed;
    if (resp.status == ResponseStatus::kCancelled) {
      ++counters_.cancelled;
      PARMEM_COUNTER_ADD("service.cancelled", 1);
    }
  }
  job->done(resp);
}

void CompileService::process(std::unique_ptr<Job> job) {
  if (job->has_deadline && !job->parked && Clock::now() >= job->deadline &&
      job->attempts == 0) {
    CompileResponse resp =
        error_response(job->req.id, ResponseStatus::kCancelled,
                       "deadline expired before the compile started");
    finish(std::move(job), std::move(resp));
    return;
  }

  Inflight inf;
  if (job->has_deadline && !job->parked) {
    inf.has_cancel_at = true;
    inf.cancel_at =
        job->deadline + std::chrono::milliseconds(opts_.watchdog_grace_ms);
  }
  register_inflight(&inf);
  AttemptResult result = run_attempt(*job, inf);
  unregister_inflight(&inf);
  ++job->attempts;

  switch (result.kind) {
    case AttemptResult::kSuccess:
    case AttemptResult::kDegradedRequested:
      finish(std::move(job), std::move(result.resp));
      return;
    case AttemptResult::kUser: {
      CompileResponse resp = error_response(
          job->req.id, ResponseStatus::kUserError, std::move(result.diag));
      finish(std::move(job), std::move(resp));
      return;
    }
    case AttemptResult::kDegradedDeadline: {
      // "Budget exhaustion at a tier with headroom": retry only when the
      // deadline would survive the backoff with slack to spare.
      if (should_retry(opts_.retry, FailureClass::kTransient,
                       job->attempts) &&
          degraded_has_headroom(opts_.retry, remaining_deadline_ms(*job),
                                job->attempts, job->key)) {
        const std::uint64_t backoff =
            retry_backoff_ms(opts_.retry, job->attempts, job->key);
        {
          std::lock_guard<std::mutex> lk(counters_mu_);
          ++counters_.retried;
        }
        PARMEM_COUNTER_ADD("service.retried", 1);
        requeue(std::move(job),
                Clock::now() + std::chrono::milliseconds(backoff));
        return;
      }
      finish(std::move(job), std::move(result.resp));
      return;
    }
    case AttemptResult::kTransient: {
      if (job->parked) {
        // The parking attempt was the last resort; a fault there is final.
        CompileResponse resp =
            error_response(job->req.id, ResponseStatus::kInternalError,
                           std::move(result.diag));
        finish(std::move(job), std::move(resp));
        return;
      }
      const std::uint64_t backoff =
          retry_backoff_ms(opts_.retry, job->attempts, job->key);
      const std::uint64_t rem = remaining_deadline_ms(*job);
      const bool deadline_allows =
          !job->has_deadline || rem > backoff + opts_.retry.min_headroom_ms;
      if (should_retry(opts_.retry, FailureClass::kTransient, job->attempts) &&
          deadline_allows) {
        {
          std::lock_guard<std::mutex> lk(counters_mu_);
          ++counters_.retried;
        }
        PARMEM_COUNTER_ADD("service.retried", 1);
        requeue(std::move(job),
                Clock::now() + std::chrono::milliseconds(backoff));
        return;
      }
      // Attempts (or the deadline) ran out: escalate to the degraded
      // parking attempt so the request still ends with an artifact when
      // one is producible at all.
      job->parked = true;
      {
        std::lock_guard<std::mutex> lk(counters_mu_);
        ++counters_.escalated;
      }
      PARMEM_COUNTER_ADD("service.escalated", 1);
      requeue(std::move(job), Clock::now());
      return;
    }
  }
}

std::uint64_t serve(ByteStream& stream, CompileService& service) {
  return serve_frames(stream,
                      [&service](CompileRequest req,
                                 CompileService::Callback done) {
                        service.submit(std::move(req), std::move(done));
                      });
}

std::uint64_t serve_frames(ByteStream& stream, const SubmitFn& submit) {
  std::mutex io_mu;  // guards write_frame and `written`
  std::uint64_t written = 0;
  std::mutex pending_mu;
  std::condition_variable pending_cv;
  std::size_t pending = 0;

  const auto write_response = [&](const CompileResponse& resp) {
    std::lock_guard<std::mutex> lk(io_mu);
    try {
      PARMEM_FAULT_POINT("service.respond", nullptr);
      write_frame(stream, format_response(resp));
      ++written;
    } catch (const std::exception&) {
      // The peer is gone (or a respond fault fired); the service result is
      // already terminal, so the loop just keeps draining.
    }
  };

  for (;;) {
    std::string payload;
    bool got = false;
    try {
      got = read_frame(stream, payload);
    } catch (const support::UserError& e) {
      // A malformed frame leaves the byte stream out of sync; answer once
      // and stop reading.
      write_response(error_response(0, ResponseStatus::kUserError, e.what()));
      break;
    }
    if (!got) break;  // clean EOF

    CompileRequest req;
    try {
      req = parse_request(payload);
    } catch (const support::UserError& e) {
      write_response(error_response(0, ResponseStatus::kUserError, e.what()));
      continue;
    }

    {
      std::lock_guard<std::mutex> lk(pending_mu);
      ++pending;
    }
    submit(std::move(req), [&](const CompileResponse& resp) {
      write_response(resp);
      // Notify under the lock: the waiter in serve() destroys pending_cv
      // as soon as it observes pending == 0, so the broadcast must have
      // returned before this thread releases pending_mu.
      std::lock_guard<std::mutex> lk(pending_mu);
      --pending;
      pending_cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lk(pending_mu);
  pending_cv.wait(lk, [&] { return pending == 0; });
  lk.unlock();

  std::lock_guard<std::mutex> io_lk(io_mu);
  return written;
}

}  // namespace parmem::service
