#include "service/cache.h"

#include <algorithm>
#include <cstdio>

#include "service/request.h"
#include "support/file_io.h"

namespace parmem::service {
namespace {

/// Journal entry layout: "parmem-cache 1 <len> <16-hex-checksum>\n" +
/// payload. The checksum is fnv1a64 of the payload bytes.
std::string encode_entry(std::string_view payload) {
  char head[64];
  std::snprintf(head, sizeof head, "parmem-cache 1 %zu %016llx\n",
                payload.size(),
                static_cast<unsigned long long>(fnv1a64(payload)));
  std::string out(head);
  out.append(payload);
  return out;
}

/// Validates and strips the entry header. nullopt on any mismatch.
std::optional<std::string> decode_entry(const std::string& bytes) {
  const std::size_t nl = bytes.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  std::size_t len = 0;
  unsigned long long sum = 0;
  char tag[16] = {};
  if (std::sscanf(bytes.c_str(), "parmem-cache %15s %zu %llx", tag, &len,
                  &sum) != 3 ||
      std::string_view(tag) != "1") {
    return std::nullopt;
  }
  if (bytes.size() - nl - 1 != len) return std::nullopt;
  std::string payload = bytes.substr(nl + 1);
  if (fnv1a64(payload) != sum) return std::nullopt;
  return payload;
}

std::optional<std::uint64_t> key_of_filename(const std::string& name) {
  if (name.size() != 20 || name.substr(16) != ".res") return std::nullopt;
  std::uint64_t key = 0;
  for (const char ch : name.substr(0, 16)) {
    std::uint64_t d;
    if (ch >= '0' && ch <= '9') d = static_cast<std::uint64_t>(ch - '0');
    else if (ch >= 'a' && ch <= 'f') d = static_cast<std::uint64_t>(ch - 'a') + 10;
    else return std::nullopt;
    key = (key << 4) | d;
  }
  return key;
}

}  // namespace

ResultCache::ResultCache(std::string dir, std::size_t max_entries)
    : dir_(std::move(dir)), max_entries_(max_entries) {
  if (!dir_.empty()) {
    if (support::ensure_directory(dir_)) {
      load_journal();
    } else {
      // An unusable cache dir degrades to memory-only — the service must
      // keep serving; persistence failures show up in stats().
      ++stats_.load_errors;
      dir_.clear();
    }
  }
}

void ResultCache::load_journal() {
  // Load oldest-mtime first so the rebuilt recency order matches on-disk
  // age: a restarted daemon evicts the same cold tail a surviving one
  // would have.
  struct Candidate {
    std::int64_t mtime;
    std::string name;
    std::uint64_t key;
  };
  std::vector<Candidate> files;
  for (const std::string& name : support::list_directory(dir_)) {
    const auto key = key_of_filename(name);
    if (!key.has_value()) {
      // `.tmp-*` orphans from a killed store, or foreign files: skip (and
      // count, so the soak test can assert the crash left debris behind
      // rather than a torn entry).
      ++stats_.load_errors;
      continue;
    }
    const auto mt = support::file_mtime(dir_ + "/" + name);
    files.push_back(Candidate{mt.value_or(0), name, *key});
  }
  std::stable_sort(files.begin(), files.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.mtime < b.mtime;
                   });
  for (const Candidate& f : files) {
    const auto bytes = support::read_file(dir_ + "/" + f.name);
    if (!bytes.has_value()) {
      ++stats_.load_errors;
      continue;
    }
    auto payload = decode_entry(*bytes);
    if (!payload.has_value()) {
      ++stats_.load_errors;
      continue;
    }
    Entry e;
    e.payload = std::move(*payload);
    e.seq = next_seq_++;
    recency_.emplace(e.seq, f.key);
    entries_.emplace(f.key, std::move(e));
    ++stats_.loaded;
  }
  // Trim an over-capacity journal immediately (single-threaded here).
  for (const std::string& path : evict_locked()) support::remove_file(path);
}

void ResultCache::touch(
    std::unordered_map<std::uint64_t, Entry>::iterator it) {
  recency_.erase(it->second.seq);
  it->second.seq = next_seq_++;
  recency_.emplace(it->second.seq, it->first);
}

std::vector<std::string> ResultCache::evict_locked() {
  std::vector<std::string> doomed;
  while (max_entries_ != 0 && entries_.size() > max_entries_ &&
         !recency_.empty()) {
    const auto oldest = recency_.begin();
    const std::uint64_t victim = oldest->second;
    recency_.erase(oldest);
    entries_.erase(victim);
    ++stats_.evicted;
    if (!dir_.empty()) doomed.push_back(entry_path(victim));
  }
  return doomed;
}

std::string ResultCache::entry_path(std::uint64_t key) const {
  if (dir_.empty()) return "";
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.res",
                static_cast<unsigned long long>(key));
  return dir_ + "/" + name;
}

std::optional<std::string> ResultCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  touch(it);
  return it->second.payload;
}

void ResultCache::store(std::uint64_t key, std::string_view cached_part) {
  std::string persist_path;
  std::string persist_bytes;
  std::vector<std::string> doomed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto [it, inserted] = entries_.emplace(key, Entry{});
    if (!inserted) {
      // First writer wins; re-storing still counts as recent use.
      touch(it);
      return;
    }
    it->second.payload.assign(cached_part.data(), cached_part.size());
    it->second.seq = next_seq_++;
    recency_.emplace(it->second.seq, key);
    ++stats_.stores;
    if (!dir_.empty()) {
      persist_path = entry_path(key);
      persist_bytes = encode_entry(it->second.payload);
    }
    doomed = evict_locked();
  }
  for (const std::string& path : doomed) support::remove_file(path);
  if (!persist_path.empty() &&
      !support::write_file_atomic(persist_path, persist_bytes)) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.store_errors;
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace parmem::service
