// Lock-step LIW simulator — functional and timing — plus the sequential
// reference machine.
//
// Functional semantics of a word: every operand read sees the pre-word
// state; all writes (and the branch decision) commit together afterwards.
//
// Timing of a word: each scalar operand is fetched from one module holding
// a copy of it (the simulator picks distinct representatives when they
// exist — that is exactly what the compile-time assignment guarantees for
// predictable operands); each array access is banked by the configured
// ArrayPolicy; transfers occupy their two ports. A word with a maximum
// per-module pile-up of i costs max(1, i·Δ) cycles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "assign/assigner.h"
#include "ir/liw.h"
#include "machine/config.h"

namespace parmem::machine {

struct RunResult {
  std::uint64_t cycles = 0;
  std::uint64_t words_executed = 0;
  std::uint64_t ops_executed = 0;
  /// Σ over executed words of Δ·(max module load); the paper's "time spent
  /// on performing the memory transfers".
  std::uint64_t memory_transfer_time = 0;
  /// Same quantity under the analytic model: array accesses uniform over
  /// modules, scalars fixed (Σ Δ·E[max]). Policy-independent.
  double analytic_transfer_time = 0.0;
  /// Executed words whose max module load exceeded one.
  std::uint64_t conflict_words = 0;
  std::uint64_t scalar_fetches = 0;
  std::uint64_t array_accesses = 0;
  std::uint64_t transfers_executed = 0;
  std::vector<std::uint64_t> module_accesses;  // per-module histogram
  /// histogram[i] = number of executed words whose maximum per-module load
  /// was i — the empirical counterpart of the paper's p(i) distribution
  /// (compare with machine::max_load_distribution).
  std::vector<std::uint64_t> max_load_histogram;
  std::vector<std::string> output;             // kPrint results, in order
};

/// Initial array contents for a run: array id -> per-element values
/// (int64 for int arrays; for real arrays pass the bit-meaningful doubles
/// via the `reals` field). Arrays not listed start zeroed.
struct MemoryImage {
  struct ArrayInit {
    ir::ArrayId array = 0;
    std::vector<std::int64_t> ints;   // used when the array is int
    std::vector<double> reals;        // used when the array is real
  };
  std::vector<ArrayInit> arrays;
};

/// Runs a scheduled program under `assignment`. Values with no placement
/// (never fetched) are written to module (id mod k) when count_writes is
/// on. Throws support::UserError on run-time errors (division by zero,
/// array index out of bounds) and InternalError if max_words is exceeded.
RunResult run_liw(const ir::LiwProgram& prog,
                  const assign::AssignResult& assignment,
                  const MachineConfig& config,
                  const MemoryImage& image = {});

/// Sequential reference machine: executes the TAC one operation per step.
/// Functional oracle for the LIW pipeline; timing: an op costs
/// max(1, Δ·accesses) with every access serialized through a single port.
RunResult run_sequential(const ir::TacProgram& prog,
                         const MachineConfig& config,
                         const MemoryImage& image = {});

}  // namespace parmem::machine
