// Analytic conflict model (§3).
//
// For one long instruction the paper computes
//     t_ave = Σ_{i=1..n_m} i · Δ · p(i)
// where p(i) is the probability that the instruction needs i operands from
// the same module, i.e. Δ · E[max module load] when each array access picks
// a module uniformly at random while the compile-time-placed scalar
// accesses are fixed. We compute E[max] exactly: with `a` independent
// uniform accesses over k modules on top of fixed per-module base loads,
//     P(max <= M) = (# bounded assignments) / k^a
// via a DP over modules, and E[max] = Σ_{m>=1} P(max >= m).
#pragma once

#include <cstdint>
#include <vector>

namespace parmem::machine {

/// Expected maximum per-module load. `base[m]` is the fixed load on module
/// m (scalar fetches), `random_accesses` the number of uniform array
/// accesses. base.size() is the module count.
double expected_max_load(const std::vector<std::uint64_t>& base,
                         std::size_t random_accesses);

/// Probability that the maximum load is at most `bound` (helper, exposed
/// for tests).
double prob_max_load_at_most(const std::vector<std::uint64_t>& base,
                             std::size_t random_accesses, std::uint64_t bound);

/// The paper's p(i): probability that the instruction requires exactly i
/// operands from the busiest module. Index 0 of the result is P(max = 0)
/// (only possible with no accesses at all); entries sum to 1.
std::vector<double> max_load_distribution(
    const std::vector<std::uint64_t>& base, std::size_t random_accesses);

}  // namespace parmem::machine
