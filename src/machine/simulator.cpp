#include "machine/simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "machine/conflict_model.h"
#include "support/diagnostics.h"
#include "support/matching.h"
#include "support/rng.h"
#include "telemetry/telemetry.h"

namespace parmem::machine {

namespace {

/// Emits the run's headline numbers as telemetry counters so traces line up
/// simulator cost against the compile-time phases. Mirrors RunResult — the
/// invariants tying these together are tested in
/// tests/machine/run_result_invariants_test.cpp.
void count_run(const RunResult& res) {
#if PARMEM_TELEMETRY_ENABLED
  PARMEM_COUNTER_ADD("sim.runs", 1);
  PARMEM_COUNTER_ADD("sim.cycles", res.cycles);
  PARMEM_COUNTER_ADD("sim.words", res.words_executed);
  PARMEM_COUNTER_ADD("sim.conflict_words", res.conflict_words);
  PARMEM_COUNTER_ADD("sim.stall_cycles", res.cycles - res.words_executed);
  PARMEM_COUNTER_ADD("sim.memory_transfer_time", res.memory_transfer_time);
  PARMEM_COUNTER_ADD("sim.scalar_fetches", res.scalar_fetches);
  PARMEM_COUNTER_ADD("sim.array_accesses", res.array_accesses);
  PARMEM_COUNTER_ADD("sim.transfers_executed", res.transfers_executed);
#else
  (void)res;
#endif
}

}  // namespace

const char* array_policy_name(ArrayPolicy p) {
  switch (p) {
    case ArrayPolicy::kInterleaved: return "interleaved";
    case ArrayPolicy::kSingleModule: return "single-module";
    case ArrayPolicy::kUniformRandom: return "uniform-random";
    case ArrayPolicy::kIdealSpread: return "ideal-spread";
    case ArrayPolicy::kWorstCase: return "worst-case";
  }
  PARMEM_UNREACHABLE("bad array policy");
}

namespace {

using ir::Opcode;
using ir::Operand;
using ir::ScalarType;

/// A run-time scalar: exactly one of the two fields is live, per the
/// value's declared type.
struct Cell {
  std::int64_t i = 0;
  double r = 0.0;
};

[[noreturn]] void runtime_error(const std::string& msg) {
  throw support::UserError("run-time error: " + msg);
}

class Evaluator {
 public:
  Evaluator(const ir::ValueTable& values, const ir::ArrayTable& arrays)
      : values_(values) {
    env_.resize(values.size());
    mem_.reserve(arrays.size());
    for (ir::ArrayId a = 0; a < arrays.size(); ++a) {
      mem_.emplace_back(arrays.info(a).length);
    }
  }

  /// Loads initial array contents (arrays not mentioned stay zeroed).
  void load_image(const MemoryImage& image, const ir::ArrayTable& arrays) {
    for (const MemoryImage::ArrayInit& init : image.arrays) {
      PARMEM_CHECK(init.array < mem_.size(), "image array id out of range");
      const bool is_real =
          arrays.info(init.array).type == ScalarType::kReal;
      const std::size_t n =
          is_real ? init.reals.size() : init.ints.size();
      PARMEM_CHECK(n <= mem_[init.array].size(),
                   "image longer than the array");
      for (std::size_t i = 0; i < n; ++i) {
        if (is_real) {
          mem_[init.array][i].r = init.reals[i];
        } else {
          mem_[init.array][i].i = init.ints[i];
        }
      }
    }
  }

  Cell read_operand(const Operand& o) const {
    switch (o.kind) {
      case Operand::Kind::kValue:
        return env_[o.value];
      case Operand::Kind::kImmInt: {
        Cell c;
        c.i = o.imm_int;
        return c;
      }
      case Operand::Kind::kImmReal: {
        Cell c;
        c.r = o.imm_real;
        return c;
      }
      case Operand::Kind::kNone:
        break;
    }
    PARMEM_UNREACHABLE("read of an absent operand");
  }

  bool operand_is_real(const Operand& o) const {
    if (o.kind == Operand::Kind::kImmReal) return true;
    if (o.kind == Operand::Kind::kValue) {
      return values_.info(o.value).type == ScalarType::kReal;
    }
    return false;
  }

  /// Evaluates a non-control op; returns the destination cell.
  /// `array_index` (when relevant) has already been read.
  Cell eval(const ir::TacInstr& in) const {
    const auto A = [&] { return read_operand(in.a); };
    const auto B = [&] { return read_operand(in.b); };
    const bool real_op = operand_is_real(in.a);
    Cell out;
    switch (in.op) {
      case Opcode::kMov:
        return A();
      case Opcode::kAdd:
        if (real_op) out.r = A().r + B().r; else out.i = A().i + B().i;
        return out;
      case Opcode::kSub:
        if (real_op) out.r = A().r - B().r; else out.i = A().i - B().i;
        return out;
      case Opcode::kMul:
        if (real_op) out.r = A().r * B().r; else out.i = A().i * B().i;
        return out;
      case Opcode::kDiv:
        if (real_op) {
          if (B().r == 0.0) runtime_error("real division by zero");
          out.r = A().r / B().r;
        } else {
          if (B().i == 0) runtime_error("integer division by zero");
          out.i = A().i / B().i;
        }
        return out;
      case Opcode::kMod:
        if (B().i == 0) runtime_error("modulo by zero");
        out.i = A().i % B().i;
        return out;
      case Opcode::kNeg:
        if (real_op) out.r = -A().r; else out.i = -A().i;
        return out;
      case Opcode::kCmpEq:
        out.i = real_op ? (A().r == B().r) : (A().i == B().i);
        return out;
      case Opcode::kCmpNe:
        out.i = real_op ? (A().r != B().r) : (A().i != B().i);
        return out;
      case Opcode::kCmpLt:
        out.i = real_op ? (A().r < B().r) : (A().i < B().i);
        return out;
      case Opcode::kCmpLe:
        out.i = real_op ? (A().r <= B().r) : (A().i <= B().i);
        return out;
      case Opcode::kCmpGt:
        out.i = real_op ? (A().r > B().r) : (A().i > B().i);
        return out;
      case Opcode::kCmpGe:
        out.i = real_op ? (A().r >= B().r) : (A().i >= B().i);
        return out;
      case Opcode::kAnd:
        out.i = (A().i != 0 && B().i != 0) ? 1 : 0;
        return out;
      case Opcode::kOr:
        out.i = (A().i != 0 || B().i != 0) ? 1 : 0;
        return out;
      case Opcode::kNot:
        out.i = A().i == 0 ? 1 : 0;
        return out;
      case Opcode::kToReal:
        out.r = static_cast<double>(A().i);
        return out;
      case Opcode::kToInt:
        out.i = static_cast<std::int64_t>(A().r);
        return out;
      case Opcode::kSqrt:
        if (A().r < 0) runtime_error("sqrt of a negative number");
        out.r = std::sqrt(A().r);
        return out;
      case Opcode::kSin:
        out.r = std::sin(A().r);
        return out;
      case Opcode::kCos:
        out.r = std::cos(A().r);
        return out;
      case Opcode::kAbs:
        if (real_op) out.r = std::fabs(A().r); else out.i = std::llabs(A().i);
        return out;
      case Opcode::kSelect:
        return A().i != 0 ? B() : read_operand(in.c);
      case Opcode::kLoad: {
        const std::int64_t idx = A().i;
        check_index(in.array, idx);
        return mem_[in.array][static_cast<std::size_t>(idx)];
      }
      default:
        PARMEM_UNREACHABLE("eval of a non-value op");
    }
  }

  void check_index(ir::ArrayId a, std::int64_t idx) const {
    if (idx < 0 || static_cast<std::size_t>(idx) >= mem_[a].size()) {
      runtime_error("array index " + std::to_string(idx) +
                    " out of bounds (length " +
                    std::to_string(mem_[a].size()) + ")");
    }
  }

  std::string format(const Operand& o) const {
    const Cell c = read_operand(o);
    if (operand_is_real(o)) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.12g", c.r);
      return buf;
    }
    return std::to_string(c.i);
  }

  std::vector<Cell> env_;
  std::vector<std::vector<Cell>> mem_;

 private:
  const ir::ValueTable& values_;
};

/// Accounting for one word's module traffic.
struct WordTraffic {
  std::vector<std::uint64_t> load;     // per module
  std::size_t random_array_accesses = 0;

  explicit WordTraffic(std::size_t k) : load(k, 0) {}

  std::uint64_t max_load() const {
    return *std::max_element(load.begin(), load.end());
  }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const std::uint64_t l : load) t += l;
    return t;
  }
};

}  // namespace

RunResult run_liw(const ir::LiwProgram& prog,
                  const assign::AssignResult& assignment,
                  const MachineConfig& config, const MemoryImage& image) {
  PARMEM_SPAN("sim.run_liw");
  const std::size_t k = config.module_count;
  PARMEM_CHECK(k >= 1, "need at least one module");
  PARMEM_CHECK(assignment.placement.size() == prog.values.size(),
               "assignment does not match the program's value table");
  ir::validate_liw(prog, config.fu_count);

  Evaluator ev(prog.values, prog.arrays);
  ev.load_image(image, prog.arrays);
  support::SplitMix64 rng(config.seed);
  RunResult res;
  res.module_accesses.assign(k, 0);

  // Interleaving bases: arrays start at staggered offsets.
  std::vector<std::size_t> array_base(prog.arrays.size(), 0);
  {
    std::size_t offset = 0;
    for (ir::ArrayId a = 0; a < prog.arrays.size(); ++a) {
      array_base[a] = offset % k;
      offset += prog.arrays.info(a).length;
    }
  }

  std::size_t pc = 0;
  while (pc < prog.words.size()) {
    PARMEM_CHECK(res.words_executed < config.max_words,
                 "word budget exceeded — is the program diverging?");
    const ir::LiwWord& word = prog.words[pc];

    // ---- Timing: module traffic of this word. ----
    // Fixed part first (scalar fetches, transfers, optional writes): this
    // is the `base` both the concrete timing and the analytic model share.
    WordTraffic traffic(k);

    // Scalar fetches: distinct read values, assigned distinct modules when
    // the copy sets allow it.
    std::set<ir::ValueId> reads;
    for (const ir::TacInstr& op : word.ops) {
      if (op.op == Opcode::kXfer) continue;
      for (const ir::ValueId u : op.value_uses()) reads.insert(u);
    }
    {
      std::vector<std::vector<std::uint32_t>> choices;
      std::vector<ir::ValueId> read_list(reads.begin(), reads.end());
      bool all_placed = true;
      for (const ir::ValueId v : read_list) {
        if (assignment.placement[v] == 0) {
          all_placed = false;
          break;
        }
        choices.push_back(assign::modules_of(assignment.placement[v]));
      }
      const auto reps =
          all_placed ? support::find_distinct_representatives(choices, k)
                     : std::nullopt;
      if (reps.has_value()) {
        for (const std::uint32_t m : *reps) ++traffic.load[m];
      } else {
        // Residual conflict (or unplaced value): serialize greedily — each
        // fetch takes the least-loaded module holding a copy.
        for (const ir::ValueId v : read_list) {
          const assign::ModuleSet s = assignment.placement[v];
          std::uint32_t best = v % static_cast<std::uint32_t>(k);
          if (s != 0) {
            const auto mods = assign::modules_of(s);
            best = mods[0];
            for (const std::uint32_t m : mods) {
              if (traffic.load[m] < traffic.load[best]) best = m;
            }
          }
          ++traffic.load[best];
        }
      }
      res.scalar_fetches += read_list.size();
    }

    // Writes (optional) and transfers (always).
    for (const ir::TacInstr& op : word.ops) {
      if (op.op == Opcode::kXfer) {
        ++traffic.load[op.xfer_src_module];
        ++traffic.load[op.xfer_dst_module];
        ++res.transfers_executed;
        continue;
      }
      if (config.count_writes && ir::has_dst(op.op)) {
        const assign::ModuleSet s = assignment.placement[op.dst];
        const std::uint32_t m =
            s != 0 ? assign::modules_of(s)[0]
                   : op.dst % static_cast<std::uint32_t>(k);
        ++traffic.load[m];
      }
    }
    const std::vector<std::uint64_t> fixed_base = traffic.load;

    // Array accesses.
    for (const ir::TacInstr& op : word.ops) {
      if (op.op != Opcode::kLoad && op.op != Opcode::kStore) continue;
      ++res.array_accesses;
      ++traffic.random_array_accesses;
      const std::int64_t idx = ev.read_operand(op.a).i;
      std::uint32_t m = 0;
      switch (config.array_policy) {
        case ArrayPolicy::kInterleaved:
          m = static_cast<std::uint32_t>(
              (array_base[op.array] + static_cast<std::uint64_t>(
                                          std::max<std::int64_t>(idx, 0))) %
              k);
          break;
        case ArrayPolicy::kSingleModule:
          m = 0;
          break;
        case ArrayPolicy::kUniformRandom:
          m = static_cast<std::uint32_t>(rng.below(k));
          break;
        case ArrayPolicy::kIdealSpread: {
          m = 0;
          for (std::uint32_t j = 1; j < k; ++j) {
            if (traffic.load[j] < traffic.load[m]) m = j;
          }
          break;
        }
        case ArrayPolicy::kWorstCase: {
          m = 0;
          for (std::uint32_t j = 1; j < k; ++j) {
            if (traffic.load[j] > traffic.load[m]) m = j;
          }
          break;
        }
      }
      ++traffic.load[m];
    }

    // Commit timing.
    const std::uint64_t max_load = traffic.max_load();
    const std::uint64_t word_time =
        std::max<std::uint64_t>(1, config.delta * max_load);
    res.cycles += word_time;
    res.memory_transfer_time += config.delta * max_load;
    if (res.max_load_histogram.size() <= max_load) {
      res.max_load_histogram.resize(max_load + 1, 0);
    }
    ++res.max_load_histogram[max_load];
    if (max_load > 1) ++res.conflict_words;
    for (std::size_t m = 0; m < k; ++m) {
      res.module_accesses[m] += traffic.load[m];
    }
    // Analytic model: the fixed base load is what the compile-time
    // assignment produced; array accesses are uniform random over modules.
    res.analytic_transfer_time +=
        static_cast<double>(config.delta) *
        expected_max_load(fixed_base, traffic.random_array_accesses);

    // ---- Functional execution: reads before writes. ----
    struct Write {
      ir::ValueId dst;
      Cell value;
    };
    std::vector<Write> scalar_writes;
    struct ArrayWrite {
      ir::ArrayId array;
      std::int64_t index;
      Cell value;
    };
    std::vector<ArrayWrite> array_writes;
    std::int64_t branch_to = -1;
    bool halted = false;

    for (const ir::TacInstr& op : word.ops) {
      ++res.ops_executed;
      switch (op.op) {
        case Opcode::kNop:
        case Opcode::kXfer:
          break;
        case Opcode::kStore: {
          const std::int64_t idx = ev.read_operand(op.a).i;
          ev.check_index(op.array, idx);
          array_writes.push_back({op.array, idx, ev.read_operand(op.b)});
          break;
        }
        case Opcode::kBr:
          branch_to = static_cast<std::int64_t>(op.target);
          break;
        case Opcode::kBrTrue:
          if (ev.read_operand(op.a).i != 0) {
            branch_to = static_cast<std::int64_t>(op.target);
          }
          break;
        case Opcode::kBrFalse:
          if (ev.read_operand(op.a).i == 0) {
            branch_to = static_cast<std::int64_t>(op.target);
          }
          break;
        case Opcode::kPrint:
          res.output.push_back(ev.format(op.a));
          break;
        case Opcode::kHalt:
          halted = true;
          break;
        default:
          scalar_writes.push_back({op.dst, ev.eval(op)});
          break;
      }
    }
    for (const Write& w : scalar_writes) ev.env_[w.dst] = w.value;
    for (const ArrayWrite& w : array_writes) {
      ev.mem_[w.array][static_cast<std::size_t>(w.index)] = w.value;
    }

    ++res.words_executed;
    if (halted) break;
    pc = branch_to >= 0 ? static_cast<std::size_t>(branch_to) : pc + 1;
  }
  count_run(res);
  return res;
}

RunResult run_sequential(const ir::TacProgram& prog,
                         const MachineConfig& config,
                         const MemoryImage& image) {
  PARMEM_SPAN("sim.run_sequential");
  Evaluator ev(prog.values, prog.arrays);
  ev.load_image(image, prog.arrays);
  RunResult res;
  res.module_accesses.assign(config.module_count, 0);

  std::size_t pc = 0;
  while (pc < prog.instrs.size()) {
    PARMEM_CHECK(res.words_executed < config.max_words,
                 "instruction budget exceeded — is the program diverging?");
    const ir::TacInstr& in = prog.instrs[pc];
    ++res.ops_executed;
    ++res.words_executed;

    // Timing: every access serialized through one port.
    std::uint64_t accesses = in.value_uses().size();
    if (in.op == Opcode::kLoad || in.op == Opcode::kStore) {
      ++accesses;
      ++res.array_accesses;
    }
    if (config.count_writes && ir::has_dst(in.op)) ++accesses;
    res.scalar_fetches += in.value_uses().size();
    res.cycles += std::max<std::uint64_t>(1, config.delta * accesses);
    res.memory_transfer_time += config.delta * accesses;

    switch (in.op) {
      case Opcode::kNop:
      case Opcode::kXfer:
        ++pc;
        break;
      case Opcode::kStore: {
        const std::int64_t idx = ev.read_operand(in.a).i;
        ev.check_index(in.array, idx);
        ev.mem_[in.array][static_cast<std::size_t>(idx)] =
            ev.read_operand(in.b);
        ++pc;
        break;
      }
      case Opcode::kBr:
        pc = in.target;
        break;
      case Opcode::kBrTrue:
        pc = ev.read_operand(in.a).i != 0 ? in.target : pc + 1;
        break;
      case Opcode::kBrFalse:
        pc = ev.read_operand(in.a).i == 0 ? in.target : pc + 1;
        break;
      case Opcode::kPrint:
        res.output.push_back(ev.format(in.a));
        ++pc;
        break;
      case Opcode::kHalt:
        count_run(res);
        return res;
      default:
        ev.env_[in.dst] = ev.eval(in);
        ++pc;
        break;
    }
  }
  count_run(res);
  return res;
}

}  // namespace parmem::machine
