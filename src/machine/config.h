// Machine model configuration.
//
// The simulated machine follows the paper's RLIW template: `fu_count`
// functional units in lock-step, `module_count` memory modules accessed
// through an interconnection network, one access per module per memory
// cycle; a word whose accesses pile i-deep on one module takes i*Δ to fetch
// (§3's timing model: t = Σ i·Δ·p(i)).
#pragma once

#include <cstddef>
#include <cstdint>

namespace parmem::machine {

/// How the run-time bank of an array element is chosen — the knob behind
/// Table 2 (array conflicts are not predictable at compile time).
enum class ArrayPolicy : std::uint8_t {
  /// Elements interleaved across modules ((base + index) mod k): the
  /// practical layout the paper assumes production systems use.
  kInterleaved,
  /// Every array lives in module 0 — the paper's t_max pathology ("the
  /// storage required for all of the arrays ... allocated from the same
  /// memory module").
  kSingleModule,
  /// Each access lands on a uniformly random module — the paper's t_ave
  /// assumption, measured by Monte Carlo here.
  kUniformRandom,
  /// Array accesses of a word are spread to minimize the maximum module
  /// load — the paper's t_min ("no memory conflicts occur due to array
  /// references").
  kIdealSpread,
  /// Every array access of a word piles onto the most-loaded module — the
  /// paper's t_max ("assuming every array access causes a memory access
  /// conflict"). Note this dominates kSingleModule, which can accidentally
  /// dodge the modules the scalar fetches occupy.
  kWorstCase,
};

const char* array_policy_name(ArrayPolicy p);

/// Compile-time parallelism knobs — how many threads the compiler itself
/// (atom-parallel assignment, batch compilation) may use; nothing here
/// affects the simulated machine.
///
/// `threads == 0` selects the legacy sequential sweep: atoms are colored one
/// after another, each seeing its predecessors' module-load state.
/// `threads >= 1` selects the deterministic atom-task decomposition
/// (separators first, then independent per-atom tasks merged in stable atom
/// order); every value >= 1 produces byte-identical results — `threads == 1`
/// runs the same tasks inline and is the "serial" side of the differential
/// tests, `threads == t` runs them on t-1 pool workers plus the caller.
struct ParallelConfig {
  std::size_t threads = 0;
  /// Diagnostic escape hatch: ignore `threads` and force the legacy
  /// sequential path.
  bool force_serial = false;
  /// Speculative intra-atom coloring: a conflict-graph atom with at least
  /// this many undecided vertices is colored by optimistic chunk-parallel
  /// rounds with conflict repair instead of the sequential urgency heap
  /// (assign/speculate.h). 0 (default) keeps the tier off; enabling it
  /// requires `threads >= 1`. Output is a pure function of the input and
  /// `speculate_chunk`: byte-identical for every thread count, but a
  /// different chunk size is a different (still conflict-free) schedule.
  std::size_t speculate_threshold = 0;
  /// Vertices per speculative chunk; part of the deterministic schedule
  /// (see above). The thread count never changes the produced assignment.
  std::size_t speculate_chunk = 256;

  std::size_t effective_threads() const { return force_serial ? 0 : threads; }
};

struct MachineConfig {
  std::size_t fu_count = 8;
  std::size_t module_count = 8;
  /// Cycles per memory transfer (the paper's Δ).
  std::uint64_t delta = 1;
  ArrayPolicy array_policy = ArrayPolicy::kInterleaved;
  /// Count result writes as module accesses (off: the paper counts operand
  /// fetches only).
  bool count_writes = false;
  /// Seed for kUniformRandom bank draws.
  std::uint64_t seed = 0x900dULL;
  /// Runaway guard for buggy programs.
  std::uint64_t max_words = 50'000'000;
};

}  // namespace parmem::machine
