#include "machine/conflict_model.h"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.h"

namespace parmem::machine {

double prob_max_load_at_most(const std::vector<std::uint64_t>& base,
                             std::size_t random_accesses,
                             std::uint64_t bound) {
  const std::size_t k = base.size();
  PARMEM_CHECK(k >= 1, "need at least one module");
  for (const std::uint64_t b : base) {
    if (b > bound) return 0.0;
  }
  const std::size_t a = random_accesses;
  if (a == 0) return 1.0;

  // dp[n] = (# ways to distribute the first j modules' shares using n of
  // the labeled accesses, all bounded) / k^n-ish — we work with raw counts
  // in double (a <= ~64 in practice, k <= 32: magnitudes are fine).
  // Binomials up to C(a, c).
  std::vector<std::vector<double>> binom(a + 1, std::vector<double>(a + 1, 0));
  for (std::size_t n = 0; n <= a; ++n) {
    binom[n][0] = 1;
    for (std::size_t c = 1; c <= n; ++c) {
      binom[n][c] = binom[n - 1][c - 1] + (c <= n - 1 ? binom[n - 1][c] : 0);
    }
  }

  std::vector<double> dp(a + 1, 0.0);
  dp[0] = 1.0;
  for (std::size_t j = 0; j < k; ++j) {
    const std::uint64_t cap = bound - base[j];  // max accesses module j takes
    std::vector<double> next(a + 1, 0.0);
    for (std::size_t n = 0; n <= a; ++n) {
      if (dp[n] == 0.0) continue;
      const std::size_t cmax = std::min<std::size_t>(
          a - n, static_cast<std::size_t>(std::min<std::uint64_t>(cap, a)));
      for (std::size_t c = 0; c <= cmax; ++c) {
        // Choosing which of the remaining labeled accesses go to module j.
        next[n + c] += dp[n] * binom[a - n][c];
      }
    }
    dp = std::move(next);
  }
  return dp[a] / std::pow(static_cast<double>(k), static_cast<double>(a));
}

std::vector<double> max_load_distribution(
    const std::vector<std::uint64_t>& base, std::size_t random_accesses) {
  const std::uint64_t base_max =
      base.empty() ? 0 : *std::max_element(base.begin(), base.end());
  const std::uint64_t hi = base_max + random_accesses;
  std::vector<double> dist(hi + 1, 0.0);
  double prev = 0.0;
  for (std::uint64_t m = 0; m <= hi; ++m) {
    const double cum = prob_max_load_at_most(base, random_accesses, m);
    dist[m] = cum - prev;
    prev = cum;
  }
  return dist;
}

double expected_max_load(const std::vector<std::uint64_t>& base,
                         std::size_t random_accesses) {
  const std::uint64_t base_max =
      base.empty() ? 0 : *std::max_element(base.begin(), base.end());
  const std::uint64_t hi = base_max + random_accesses;
  // E[X] = Σ_{m=1..hi} P(X >= m) = Σ (1 - P(X <= m-1)).
  double e = 0.0;
  for (std::uint64_t m = 1; m <= hi; ++m) {
    e += 1.0 - prob_max_load_at_most(base, random_accesses, m - 1);
  }
  return e;
}

}  // namespace parmem::machine
