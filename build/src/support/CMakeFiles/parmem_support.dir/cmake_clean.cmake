file(REMOVE_RECURSE
  "CMakeFiles/parmem_support.dir/diagnostics.cpp.o"
  "CMakeFiles/parmem_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/parmem_support.dir/matching.cpp.o"
  "CMakeFiles/parmem_support.dir/matching.cpp.o.d"
  "CMakeFiles/parmem_support.dir/table.cpp.o"
  "CMakeFiles/parmem_support.dir/table.cpp.o.d"
  "CMakeFiles/parmem_support.dir/text.cpp.o"
  "CMakeFiles/parmem_support.dir/text.cpp.o.d"
  "libparmem_support.a"
  "libparmem_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmem_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
