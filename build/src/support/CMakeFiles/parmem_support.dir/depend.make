# Empty dependencies file for parmem_support.
# This may be replaced when dependencies are built.
