file(REMOVE_RECURSE
  "libparmem_support.a"
)
