file(REMOVE_RECURSE
  "libparmem_ir.a"
)
