# Empty compiler generated dependencies file for parmem_ir.
# This may be replaced when dependencies are built.
