file(REMOVE_RECURSE
  "CMakeFiles/parmem_ir.dir/access.cpp.o"
  "CMakeFiles/parmem_ir.dir/access.cpp.o.d"
  "CMakeFiles/parmem_ir.dir/liveness.cpp.o"
  "CMakeFiles/parmem_ir.dir/liveness.cpp.o.d"
  "CMakeFiles/parmem_ir.dir/liw.cpp.o"
  "CMakeFiles/parmem_ir.dir/liw.cpp.o.d"
  "CMakeFiles/parmem_ir.dir/region.cpp.o"
  "CMakeFiles/parmem_ir.dir/region.cpp.o.d"
  "CMakeFiles/parmem_ir.dir/stream_io.cpp.o"
  "CMakeFiles/parmem_ir.dir/stream_io.cpp.o.d"
  "CMakeFiles/parmem_ir.dir/tac.cpp.o"
  "CMakeFiles/parmem_ir.dir/tac.cpp.o.d"
  "CMakeFiles/parmem_ir.dir/value.cpp.o"
  "CMakeFiles/parmem_ir.dir/value.cpp.o.d"
  "libparmem_ir.a"
  "libparmem_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmem_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
