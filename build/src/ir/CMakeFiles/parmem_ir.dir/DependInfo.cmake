
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/access.cpp" "src/ir/CMakeFiles/parmem_ir.dir/access.cpp.o" "gcc" "src/ir/CMakeFiles/parmem_ir.dir/access.cpp.o.d"
  "/root/repo/src/ir/liveness.cpp" "src/ir/CMakeFiles/parmem_ir.dir/liveness.cpp.o" "gcc" "src/ir/CMakeFiles/parmem_ir.dir/liveness.cpp.o.d"
  "/root/repo/src/ir/liw.cpp" "src/ir/CMakeFiles/parmem_ir.dir/liw.cpp.o" "gcc" "src/ir/CMakeFiles/parmem_ir.dir/liw.cpp.o.d"
  "/root/repo/src/ir/region.cpp" "src/ir/CMakeFiles/parmem_ir.dir/region.cpp.o" "gcc" "src/ir/CMakeFiles/parmem_ir.dir/region.cpp.o.d"
  "/root/repo/src/ir/stream_io.cpp" "src/ir/CMakeFiles/parmem_ir.dir/stream_io.cpp.o" "gcc" "src/ir/CMakeFiles/parmem_ir.dir/stream_io.cpp.o.d"
  "/root/repo/src/ir/tac.cpp" "src/ir/CMakeFiles/parmem_ir.dir/tac.cpp.o" "gcc" "src/ir/CMakeFiles/parmem_ir.dir/tac.cpp.o.d"
  "/root/repo/src/ir/value.cpp" "src/ir/CMakeFiles/parmem_ir.dir/value.cpp.o" "gcc" "src/ir/CMakeFiles/parmem_ir.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/parmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
