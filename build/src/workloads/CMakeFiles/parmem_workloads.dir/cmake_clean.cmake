file(REMOVE_RECURSE
  "CMakeFiles/parmem_workloads.dir/stream_gen.cpp.o"
  "CMakeFiles/parmem_workloads.dir/stream_gen.cpp.o.d"
  "CMakeFiles/parmem_workloads.dir/workloads.cpp.o"
  "CMakeFiles/parmem_workloads.dir/workloads.cpp.o.d"
  "libparmem_workloads.a"
  "libparmem_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmem_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
