file(REMOVE_RECURSE
  "libparmem_workloads.a"
)
