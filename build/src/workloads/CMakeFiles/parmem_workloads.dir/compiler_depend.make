# Empty compiler generated dependencies file for parmem_workloads.
# This may be replaced when dependencies are built.
