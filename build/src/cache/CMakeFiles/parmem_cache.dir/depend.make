# Empty dependencies file for parmem_cache.
# This may be replaced when dependencies are built.
