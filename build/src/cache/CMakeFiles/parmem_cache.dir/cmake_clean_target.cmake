file(REMOVE_RECURSE
  "libparmem_cache.a"
)
