file(REMOVE_RECURSE
  "CMakeFiles/parmem_cache.dir/shared_cache.cpp.o"
  "CMakeFiles/parmem_cache.dir/shared_cache.cpp.o.d"
  "libparmem_cache.a"
  "libparmem_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmem_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
