file(REMOVE_RECURSE
  "libparmem_assign.a"
)
