# Empty compiler generated dependencies file for parmem_assign.
# This may be replaced when dependencies are built.
