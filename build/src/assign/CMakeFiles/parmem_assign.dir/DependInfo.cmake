
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assign/assigner.cpp" "src/assign/CMakeFiles/parmem_assign.dir/assigner.cpp.o" "gcc" "src/assign/CMakeFiles/parmem_assign.dir/assigner.cpp.o.d"
  "/root/repo/src/assign/backtrack.cpp" "src/assign/CMakeFiles/parmem_assign.dir/backtrack.cpp.o" "gcc" "src/assign/CMakeFiles/parmem_assign.dir/backtrack.cpp.o.d"
  "/root/repo/src/assign/color_heuristic.cpp" "src/assign/CMakeFiles/parmem_assign.dir/color_heuristic.cpp.o" "gcc" "src/assign/CMakeFiles/parmem_assign.dir/color_heuristic.cpp.o.d"
  "/root/repo/src/assign/conflict_graph.cpp" "src/assign/CMakeFiles/parmem_assign.dir/conflict_graph.cpp.o" "gcc" "src/assign/CMakeFiles/parmem_assign.dir/conflict_graph.cpp.o.d"
  "/root/repo/src/assign/exact.cpp" "src/assign/CMakeFiles/parmem_assign.dir/exact.cpp.o" "gcc" "src/assign/CMakeFiles/parmem_assign.dir/exact.cpp.o.d"
  "/root/repo/src/assign/hitting_set.cpp" "src/assign/CMakeFiles/parmem_assign.dir/hitting_set.cpp.o" "gcc" "src/assign/CMakeFiles/parmem_assign.dir/hitting_set.cpp.o.d"
  "/root/repo/src/assign/hitting_set_approach.cpp" "src/assign/CMakeFiles/parmem_assign.dir/hitting_set_approach.cpp.o" "gcc" "src/assign/CMakeFiles/parmem_assign.dir/hitting_set_approach.cpp.o.d"
  "/root/repo/src/assign/placement.cpp" "src/assign/CMakeFiles/parmem_assign.dir/placement.cpp.o" "gcc" "src/assign/CMakeFiles/parmem_assign.dir/placement.cpp.o.d"
  "/root/repo/src/assign/placement_state.cpp" "src/assign/CMakeFiles/parmem_assign.dir/placement_state.cpp.o" "gcc" "src/assign/CMakeFiles/parmem_assign.dir/placement_state.cpp.o.d"
  "/root/repo/src/assign/verify.cpp" "src/assign/CMakeFiles/parmem_assign.dir/verify.cpp.o" "gcc" "src/assign/CMakeFiles/parmem_assign.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/parmem_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/parmem_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
