file(REMOVE_RECURSE
  "CMakeFiles/parmem_assign.dir/assigner.cpp.o"
  "CMakeFiles/parmem_assign.dir/assigner.cpp.o.d"
  "CMakeFiles/parmem_assign.dir/backtrack.cpp.o"
  "CMakeFiles/parmem_assign.dir/backtrack.cpp.o.d"
  "CMakeFiles/parmem_assign.dir/color_heuristic.cpp.o"
  "CMakeFiles/parmem_assign.dir/color_heuristic.cpp.o.d"
  "CMakeFiles/parmem_assign.dir/conflict_graph.cpp.o"
  "CMakeFiles/parmem_assign.dir/conflict_graph.cpp.o.d"
  "CMakeFiles/parmem_assign.dir/exact.cpp.o"
  "CMakeFiles/parmem_assign.dir/exact.cpp.o.d"
  "CMakeFiles/parmem_assign.dir/hitting_set.cpp.o"
  "CMakeFiles/parmem_assign.dir/hitting_set.cpp.o.d"
  "CMakeFiles/parmem_assign.dir/hitting_set_approach.cpp.o"
  "CMakeFiles/parmem_assign.dir/hitting_set_approach.cpp.o.d"
  "CMakeFiles/parmem_assign.dir/placement.cpp.o"
  "CMakeFiles/parmem_assign.dir/placement.cpp.o.d"
  "CMakeFiles/parmem_assign.dir/placement_state.cpp.o"
  "CMakeFiles/parmem_assign.dir/placement_state.cpp.o.d"
  "CMakeFiles/parmem_assign.dir/verify.cpp.o"
  "CMakeFiles/parmem_assign.dir/verify.cpp.o.d"
  "libparmem_assign.a"
  "libparmem_assign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmem_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
