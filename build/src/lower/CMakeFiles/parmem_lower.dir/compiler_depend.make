# Empty compiler generated dependencies file for parmem_lower.
# This may be replaced when dependencies are built.
