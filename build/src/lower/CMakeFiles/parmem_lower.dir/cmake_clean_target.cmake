file(REMOVE_RECURSE
  "libparmem_lower.a"
)
