file(REMOVE_RECURSE
  "CMakeFiles/parmem_lower.dir/ifconvert.cpp.o"
  "CMakeFiles/parmem_lower.dir/ifconvert.cpp.o.d"
  "CMakeFiles/parmem_lower.dir/lower.cpp.o"
  "CMakeFiles/parmem_lower.dir/lower.cpp.o.d"
  "CMakeFiles/parmem_lower.dir/opt.cpp.o"
  "CMakeFiles/parmem_lower.dir/opt.cpp.o.d"
  "CMakeFiles/parmem_lower.dir/rename.cpp.o"
  "CMakeFiles/parmem_lower.dir/rename.cpp.o.d"
  "libparmem_lower.a"
  "libparmem_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmem_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
