
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lower/ifconvert.cpp" "src/lower/CMakeFiles/parmem_lower.dir/ifconvert.cpp.o" "gcc" "src/lower/CMakeFiles/parmem_lower.dir/ifconvert.cpp.o.d"
  "/root/repo/src/lower/lower.cpp" "src/lower/CMakeFiles/parmem_lower.dir/lower.cpp.o" "gcc" "src/lower/CMakeFiles/parmem_lower.dir/lower.cpp.o.d"
  "/root/repo/src/lower/opt.cpp" "src/lower/CMakeFiles/parmem_lower.dir/opt.cpp.o" "gcc" "src/lower/CMakeFiles/parmem_lower.dir/opt.cpp.o.d"
  "/root/repo/src/lower/rename.cpp" "src/lower/CMakeFiles/parmem_lower.dir/rename.cpp.o" "gcc" "src/lower/CMakeFiles/parmem_lower.dir/rename.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/parmem_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/parmem_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
