file(REMOVE_RECURSE
  "CMakeFiles/parmem_graph.dir/atoms.cpp.o"
  "CMakeFiles/parmem_graph.dir/atoms.cpp.o.d"
  "CMakeFiles/parmem_graph.dir/coloring.cpp.o"
  "CMakeFiles/parmem_graph.dir/coloring.cpp.o.d"
  "CMakeFiles/parmem_graph.dir/dot.cpp.o"
  "CMakeFiles/parmem_graph.dir/dot.cpp.o.d"
  "CMakeFiles/parmem_graph.dir/graph.cpp.o"
  "CMakeFiles/parmem_graph.dir/graph.cpp.o.d"
  "CMakeFiles/parmem_graph.dir/mcsm.cpp.o"
  "CMakeFiles/parmem_graph.dir/mcsm.cpp.o.d"
  "libparmem_graph.a"
  "libparmem_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmem_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
