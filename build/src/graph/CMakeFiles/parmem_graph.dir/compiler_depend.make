# Empty compiler generated dependencies file for parmem_graph.
# This may be replaced when dependencies are built.
