file(REMOVE_RECURSE
  "libparmem_graph.a"
)
