file(REMOVE_RECURSE
  "CMakeFiles/parmem_machine.dir/conflict_model.cpp.o"
  "CMakeFiles/parmem_machine.dir/conflict_model.cpp.o.d"
  "CMakeFiles/parmem_machine.dir/simulator.cpp.o"
  "CMakeFiles/parmem_machine.dir/simulator.cpp.o.d"
  "libparmem_machine.a"
  "libparmem_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmem_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
