file(REMOVE_RECURSE
  "libparmem_machine.a"
)
