# Empty compiler generated dependencies file for parmem_machine.
# This may be replaced when dependencies are built.
