file(REMOVE_RECURSE
  "libparmem_sched.a"
)
