
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/ddg.cpp" "src/sched/CMakeFiles/parmem_sched.dir/ddg.cpp.o" "gcc" "src/sched/CMakeFiles/parmem_sched.dir/ddg.cpp.o.d"
  "/root/repo/src/sched/list_scheduler.cpp" "src/sched/CMakeFiles/parmem_sched.dir/list_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/parmem_sched.dir/list_scheduler.cpp.o.d"
  "/root/repo/src/sched/transfer_sched.cpp" "src/sched/CMakeFiles/parmem_sched.dir/transfer_sched.cpp.o" "gcc" "src/sched/CMakeFiles/parmem_sched.dir/transfer_sched.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/parmem_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/assign/CMakeFiles/parmem_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/parmem_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
