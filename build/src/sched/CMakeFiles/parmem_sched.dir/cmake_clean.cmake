file(REMOVE_RECURSE
  "CMakeFiles/parmem_sched.dir/ddg.cpp.o"
  "CMakeFiles/parmem_sched.dir/ddg.cpp.o.d"
  "CMakeFiles/parmem_sched.dir/list_scheduler.cpp.o"
  "CMakeFiles/parmem_sched.dir/list_scheduler.cpp.o.d"
  "CMakeFiles/parmem_sched.dir/transfer_sched.cpp.o"
  "CMakeFiles/parmem_sched.dir/transfer_sched.cpp.o.d"
  "libparmem_sched.a"
  "libparmem_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmem_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
