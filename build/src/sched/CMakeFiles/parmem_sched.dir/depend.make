# Empty dependencies file for parmem_sched.
# This may be replaced when dependencies are built.
