file(REMOVE_RECURSE
  "libparmem_frontend.a"
)
