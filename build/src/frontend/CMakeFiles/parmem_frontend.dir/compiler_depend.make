# Empty compiler generated dependencies file for parmem_frontend.
# This may be replaced when dependencies are built.
