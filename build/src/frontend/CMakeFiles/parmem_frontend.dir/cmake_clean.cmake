file(REMOVE_RECURSE
  "CMakeFiles/parmem_frontend.dir/ast.cpp.o"
  "CMakeFiles/parmem_frontend.dir/ast.cpp.o.d"
  "CMakeFiles/parmem_frontend.dir/lexer.cpp.o"
  "CMakeFiles/parmem_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/parmem_frontend.dir/parser.cpp.o"
  "CMakeFiles/parmem_frontend.dir/parser.cpp.o.d"
  "CMakeFiles/parmem_frontend.dir/sema.cpp.o"
  "CMakeFiles/parmem_frontend.dir/sema.cpp.o.d"
  "CMakeFiles/parmem_frontend.dir/unroll.cpp.o"
  "CMakeFiles/parmem_frontend.dir/unroll.cpp.o.d"
  "libparmem_frontend.a"
  "libparmem_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmem_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
