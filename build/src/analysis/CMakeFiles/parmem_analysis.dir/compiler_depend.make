# Empty compiler generated dependencies file for parmem_analysis.
# This may be replaced when dependencies are built.
