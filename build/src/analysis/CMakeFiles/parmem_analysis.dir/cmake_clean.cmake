file(REMOVE_RECURSE
  "CMakeFiles/parmem_analysis.dir/pipeline.cpp.o"
  "CMakeFiles/parmem_analysis.dir/pipeline.cpp.o.d"
  "libparmem_analysis.a"
  "libparmem_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmem_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
