file(REMOVE_RECURSE
  "libparmem_analysis.a"
)
