file(REMOVE_RECURSE
  "CMakeFiles/shared_cache_plan.dir/shared_cache_plan.cpp.o"
  "CMakeFiles/shared_cache_plan.dir/shared_cache_plan.cpp.o.d"
  "shared_cache_plan"
  "shared_cache_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_cache_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
