# Empty compiler generated dependencies file for shared_cache_plan.
# This may be replaced when dependencies are built.
