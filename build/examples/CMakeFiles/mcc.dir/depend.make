# Empty dependencies file for mcc.
# This may be replaced when dependencies are built.
