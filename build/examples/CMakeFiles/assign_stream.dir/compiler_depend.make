# Empty compiler generated dependencies file for assign_stream.
# This may be replaced when dependencies are built.
