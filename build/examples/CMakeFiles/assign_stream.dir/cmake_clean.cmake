file(REMOVE_RECURSE
  "CMakeFiles/assign_stream.dir/assign_stream.cpp.o"
  "CMakeFiles/assign_stream.dir/assign_stream.cpp.o.d"
  "assign_stream"
  "assign_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assign_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
