# Empty dependencies file for bank_sweep.
# This may be replaced when dependencies are built.
