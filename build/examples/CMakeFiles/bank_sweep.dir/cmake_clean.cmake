file(REMOVE_RECURSE
  "CMakeFiles/bank_sweep.dir/bank_sweep.cpp.o"
  "CMakeFiles/bank_sweep.dir/bank_sweep.cpp.o.d"
  "bank_sweep"
  "bank_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
