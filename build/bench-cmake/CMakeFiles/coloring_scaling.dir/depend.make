# Empty dependencies file for coloring_scaling.
# This may be replaced when dependencies are built.
