file(REMOVE_RECURSE
  "../bench/coloring_scaling"
  "../bench/coloring_scaling.pdb"
  "CMakeFiles/coloring_scaling.dir/coloring_scaling.cpp.o"
  "CMakeFiles/coloring_scaling.dir/coloring_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coloring_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
