file(REMOVE_RECURSE
  "../bench/table3_speedup"
  "../bench/table3_speedup.pdb"
  "CMakeFiles/table3_speedup.dir/table3_speedup.cpp.o"
  "CMakeFiles/table3_speedup.dir/table3_speedup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
