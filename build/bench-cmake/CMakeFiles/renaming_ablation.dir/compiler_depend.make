# Empty compiler generated dependencies file for renaming_ablation.
# This may be replaced when dependencies are built.
