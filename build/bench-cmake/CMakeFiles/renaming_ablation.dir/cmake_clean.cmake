file(REMOVE_RECURSE
  "../bench/renaming_ablation"
  "../bench/renaming_ablation.pdb"
  "CMakeFiles/renaming_ablation.dir/renaming_ablation.cpp.o"
  "CMakeFiles/renaming_ablation.dir/renaming_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renaming_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
