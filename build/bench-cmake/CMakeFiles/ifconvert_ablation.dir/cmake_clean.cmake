file(REMOVE_RECURSE
  "../bench/ifconvert_ablation"
  "../bench/ifconvert_ablation.pdb"
  "CMakeFiles/ifconvert_ablation.dir/ifconvert_ablation.cpp.o"
  "CMakeFiles/ifconvert_ablation.dir/ifconvert_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifconvert_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
