# Empty compiler generated dependencies file for ifconvert_ablation.
# This may be replaced when dependencies are built.
