# Empty compiler generated dependencies file for table1_duplication.
# This may be replaced when dependencies are built.
