file(REMOVE_RECURSE
  "../bench/table1_duplication"
  "../bench/table1_duplication.pdb"
  "CMakeFiles/table1_duplication.dir/table1_duplication.cpp.o"
  "CMakeFiles/table1_duplication.dir/table1_duplication.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_duplication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
