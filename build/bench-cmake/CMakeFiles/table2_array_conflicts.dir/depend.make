# Empty dependencies file for table2_array_conflicts.
# This may be replaced when dependencies are built.
