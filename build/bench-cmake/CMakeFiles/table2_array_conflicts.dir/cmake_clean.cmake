file(REMOVE_RECURSE
  "../bench/table2_array_conflicts"
  "../bench/table2_array_conflicts.pdb"
  "CMakeFiles/table2_array_conflicts.dir/table2_array_conflicts.cpp.o"
  "CMakeFiles/table2_array_conflicts.dir/table2_array_conflicts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_array_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
