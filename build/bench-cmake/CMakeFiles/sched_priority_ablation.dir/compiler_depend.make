# Empty compiler generated dependencies file for sched_priority_ablation.
# This may be replaced when dependencies are built.
