file(REMOVE_RECURSE
  "../bench/sched_priority_ablation"
  "../bench/sched_priority_ablation.pdb"
  "CMakeFiles/sched_priority_ablation.dir/sched_priority_ablation.cpp.o"
  "CMakeFiles/sched_priority_ablation.dir/sched_priority_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_priority_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
