file(REMOVE_RECURSE
  "../bench/stor2_stage1_ablation"
  "../bench/stor2_stage1_ablation.pdb"
  "CMakeFiles/stor2_stage1_ablation.dir/stor2_stage1_ablation.cpp.o"
  "CMakeFiles/stor2_stage1_ablation.dir/stor2_stage1_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stor2_stage1_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
