# Empty compiler generated dependencies file for stor2_stage1_ablation.
# This may be replaced when dependencies are built.
