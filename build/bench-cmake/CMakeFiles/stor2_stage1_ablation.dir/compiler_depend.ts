# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for stor2_stage1_ablation.
