file(REMOVE_RECURSE
  "../bench/figures_repro"
  "../bench/figures_repro.pdb"
  "CMakeFiles/figures_repro.dir/figures_repro.cpp.o"
  "CMakeFiles/figures_repro.dir/figures_repro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figures_repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
