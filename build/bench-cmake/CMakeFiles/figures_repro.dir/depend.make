# Empty dependencies file for figures_repro.
# This may be replaced when dependencies are built.
