
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/figures_repro.cpp" "bench-cmake/CMakeFiles/figures_repro.dir/figures_repro.cpp.o" "gcc" "bench-cmake/CMakeFiles/figures_repro.dir/figures_repro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/parmem_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/lower/CMakeFiles/parmem_lower.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/parmem_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/parmem_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/parmem_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/assign/CMakeFiles/parmem_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/parmem_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/parmem_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/parmem_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
