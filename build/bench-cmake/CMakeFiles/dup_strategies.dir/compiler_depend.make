# Empty compiler generated dependencies file for dup_strategies.
# This may be replaced when dependencies are built.
