file(REMOVE_RECURSE
  "../bench/dup_strategies"
  "../bench/dup_strategies.pdb"
  "CMakeFiles/dup_strategies.dir/dup_strategies.cpp.o"
  "CMakeFiles/dup_strategies.dir/dup_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dup_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
