file(REMOVE_RECURSE
  "../bench/worstcase_bounds"
  "../bench/worstcase_bounds.pdb"
  "CMakeFiles/worstcase_bounds.dir/worstcase_bounds.cpp.o"
  "CMakeFiles/worstcase_bounds.dir/worstcase_bounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worstcase_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
