file(REMOVE_RECURSE
  "../bench/graph_size_study"
  "../bench/graph_size_study.pdb"
  "CMakeFiles/graph_size_study.dir/graph_size_study.cpp.o"
  "CMakeFiles/graph_size_study.dir/graph_size_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_size_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
