# Empty dependencies file for graph_size_study.
# This may be replaced when dependencies are built.
