# Empty compiler generated dependencies file for atoms_ablation.
# This may be replaced when dependencies are built.
