file(REMOVE_RECURSE
  "../bench/atoms_ablation"
  "../bench/atoms_ablation.pdb"
  "CMakeFiles/atoms_ablation.dir/atoms_ablation.cpp.o"
  "CMakeFiles/atoms_ablation.dir/atoms_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atoms_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
