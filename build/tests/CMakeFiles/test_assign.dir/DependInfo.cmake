
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/assign/assigner_test.cpp" "tests/CMakeFiles/test_assign.dir/assign/assigner_test.cpp.o" "gcc" "tests/CMakeFiles/test_assign.dir/assign/assigner_test.cpp.o.d"
  "/root/repo/tests/assign/backtrack_test.cpp" "tests/CMakeFiles/test_assign.dir/assign/backtrack_test.cpp.o" "gcc" "tests/CMakeFiles/test_assign.dir/assign/backtrack_test.cpp.o.d"
  "/root/repo/tests/assign/color_heuristic_test.cpp" "tests/CMakeFiles/test_assign.dir/assign/color_heuristic_test.cpp.o" "gcc" "tests/CMakeFiles/test_assign.dir/assign/color_heuristic_test.cpp.o.d"
  "/root/repo/tests/assign/conflict_graph_test.cpp" "tests/CMakeFiles/test_assign.dir/assign/conflict_graph_test.cpp.o" "gcc" "tests/CMakeFiles/test_assign.dir/assign/conflict_graph_test.cpp.o.d"
  "/root/repo/tests/assign/exact_test.cpp" "tests/CMakeFiles/test_assign.dir/assign/exact_test.cpp.o" "gcc" "tests/CMakeFiles/test_assign.dir/assign/exact_test.cpp.o.d"
  "/root/repo/tests/assign/hitting_set_test.cpp" "tests/CMakeFiles/test_assign.dir/assign/hitting_set_test.cpp.o" "gcc" "tests/CMakeFiles/test_assign.dir/assign/hitting_set_test.cpp.o.d"
  "/root/repo/tests/assign/paper_examples_test.cpp" "tests/CMakeFiles/test_assign.dir/assign/paper_examples_test.cpp.o" "gcc" "tests/CMakeFiles/test_assign.dir/assign/paper_examples_test.cpp.o.d"
  "/root/repo/tests/assign/placement_test.cpp" "tests/CMakeFiles/test_assign.dir/assign/placement_test.cpp.o" "gcc" "tests/CMakeFiles/test_assign.dir/assign/placement_test.cpp.o.d"
  "/root/repo/tests/assign/property_test.cpp" "tests/CMakeFiles/test_assign.dir/assign/property_test.cpp.o" "gcc" "tests/CMakeFiles/test_assign.dir/assign/property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assign/CMakeFiles/parmem_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/parmem_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/parmem_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
