file(REMOVE_RECURSE
  "CMakeFiles/test_assign.dir/assign/assigner_test.cpp.o"
  "CMakeFiles/test_assign.dir/assign/assigner_test.cpp.o.d"
  "CMakeFiles/test_assign.dir/assign/backtrack_test.cpp.o"
  "CMakeFiles/test_assign.dir/assign/backtrack_test.cpp.o.d"
  "CMakeFiles/test_assign.dir/assign/color_heuristic_test.cpp.o"
  "CMakeFiles/test_assign.dir/assign/color_heuristic_test.cpp.o.d"
  "CMakeFiles/test_assign.dir/assign/conflict_graph_test.cpp.o"
  "CMakeFiles/test_assign.dir/assign/conflict_graph_test.cpp.o.d"
  "CMakeFiles/test_assign.dir/assign/exact_test.cpp.o"
  "CMakeFiles/test_assign.dir/assign/exact_test.cpp.o.d"
  "CMakeFiles/test_assign.dir/assign/hitting_set_test.cpp.o"
  "CMakeFiles/test_assign.dir/assign/hitting_set_test.cpp.o.d"
  "CMakeFiles/test_assign.dir/assign/paper_examples_test.cpp.o"
  "CMakeFiles/test_assign.dir/assign/paper_examples_test.cpp.o.d"
  "CMakeFiles/test_assign.dir/assign/placement_test.cpp.o"
  "CMakeFiles/test_assign.dir/assign/placement_test.cpp.o.d"
  "CMakeFiles/test_assign.dir/assign/property_test.cpp.o"
  "CMakeFiles/test_assign.dir/assign/property_test.cpp.o.d"
  "test_assign"
  "test_assign.pdb"
  "test_assign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
