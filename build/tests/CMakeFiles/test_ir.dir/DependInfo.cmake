
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir/access_test.cpp" "tests/CMakeFiles/test_ir.dir/ir/access_test.cpp.o" "gcc" "tests/CMakeFiles/test_ir.dir/ir/access_test.cpp.o.d"
  "/root/repo/tests/ir/liveness_test.cpp" "tests/CMakeFiles/test_ir.dir/ir/liveness_test.cpp.o" "gcc" "tests/CMakeFiles/test_ir.dir/ir/liveness_test.cpp.o.d"
  "/root/repo/tests/ir/region_test.cpp" "tests/CMakeFiles/test_ir.dir/ir/region_test.cpp.o" "gcc" "tests/CMakeFiles/test_ir.dir/ir/region_test.cpp.o.d"
  "/root/repo/tests/ir/stream_io_test.cpp" "tests/CMakeFiles/test_ir.dir/ir/stream_io_test.cpp.o" "gcc" "tests/CMakeFiles/test_ir.dir/ir/stream_io_test.cpp.o.d"
  "/root/repo/tests/ir/tac_test.cpp" "tests/CMakeFiles/test_ir.dir/ir/tac_test.cpp.o" "gcc" "tests/CMakeFiles/test_ir.dir/ir/tac_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/parmem_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
