# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_assign[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_lower[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
